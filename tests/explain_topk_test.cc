// Tests for scan-plan introspection (granular-partitioning pruning) and the
// Top-K result helper, plus DDL-parser robustness fuzzing.

#include <gtest/gtest.h>

#include "common/random.h"
#include "cubrick/database.h"

namespace cubrick {
namespace {

TEST(ExplainScanTest, FiltersPruneBricks) {
  Database db;
  // 8 region ranges x 4 day ranges = up to 32 bricks.
  ASSERT_TRUE(db.ExecuteDdl("CREATE CUBE t ("
                            "region int CARDINALITY 32 RANGE 4, "
                            "day int CARDINALITY 16 RANGE 4, v int)")
                  .ok());
  std::vector<Record> rows;
  for (int64_t region = 0; region < 32; region += 4) {
    for (int64_t day = 0; day < 16; day += 4) {
      rows.push_back({region, day, 1});
    }
  }
  ASSERT_TRUE(db.Load("t", rows).ok());
  Table* table = db.FindTable("t");
  ASSERT_EQ(table->NumBricks(), 32u);

  // No filters: everything scanned.
  ScanPlanStats all = table->ExplainScan({});
  EXPECT_EQ(all.bricks_total, 32u);
  EXPECT_EQ(all.bricks_pruned, 0u);
  EXPECT_EQ(all.bricks_scanned, 32u);

  // region in one range: 3/4 of bricks pruned without touching a row.
  Query q;
  q.filters = {{0, FilterClause::Op::kRange, {}, 0, 3}};
  ScanPlanStats pruned = table->ExplainScan(q);
  EXPECT_EQ(pruned.bricks_pruned, 28u);
  EXPECT_EQ(pruned.bricks_scanned, 4u);
  // The range filter exactly covers the surviving bricks' ranges: it is
  // never evaluated per row.
  EXPECT_EQ(pruned.filters_skipped_covered, 4u);
  EXPECT_EQ(pruned.rows_considered, 4u);

  // Two filters: intersection pruning through any dimension combination.
  q.filters.push_back({1, FilterClause::Op::kRange, {}, 8, 11});
  ScanPlanStats both = table->ExplainScan(q);
  EXPECT_EQ(both.bricks_scanned, 1u);
  EXPECT_EQ(both.bricks_pruned, 31u);
}

TEST(ExplainScanTest, MisalignedFilterStillEvaluatedPerRow) {
  Database db;
  ASSERT_TRUE(db.ExecuteDdl("CREATE CUBE t ("
                            "k int CARDINALITY 16 RANGE 4, v int)")
                  .ok());
  ASSERT_TRUE(db.Load("t", {{0, 1}, {1, 1}, {5, 1}}).ok());
  Query q;
  q.filters = {{0, FilterClause::Op::kEq, {1}, 0, 0}};  // half a range
  ScanPlanStats stats = db.FindTable("t")->ExplainScan(q);
  EXPECT_EQ(stats.bricks_scanned, 1u);
  EXPECT_EQ(stats.filters_skipped_covered, 0u);
}

TEST(TopKTest, RanksGroupsDescending) {
  QueryResult result(1);
  result.Accumulate({1}, 0, 10);
  result.Accumulate({2}, 0, 30);
  result.Accumulate({3}, 0, 20);
  result.Accumulate({2}, 0, 5);
  auto top2 = result.TopK(0, AggSpec::Fn::kSum, 2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0].first, (QueryResult::GroupKey{2}));
  EXPECT_DOUBLE_EQ(top2[0].second, 35.0);
  EXPECT_EQ(top2[1].first, (QueryResult::GroupKey{3}));
}

TEST(TopKTest, TiesBrokenByKey) {
  QueryResult result(1);
  result.Accumulate({9}, 0, 7);
  result.Accumulate({1}, 0, 7);
  auto top = result.TopK(0, AggSpec::Fn::kSum, 2);
  EXPECT_EQ(top[0].first, (QueryResult::GroupKey{1}));
  EXPECT_EQ(top[1].first, (QueryResult::GroupKey{9}));
}

TEST(TopKTest, KLargerThanGroups) {
  QueryResult result(1);
  result.Accumulate({1}, 0, 1);
  EXPECT_EQ(result.TopK(0, AggSpec::Fn::kSum, 10).size(), 1u);
  QueryResult empty(1);
  EXPECT_TRUE(empty.TopK(0, AggSpec::Fn::kSum, 3).empty());
}

TEST(TopKTest, EndToEndDashboardQuery) {
  Database db;
  ASSERT_TRUE(db.ExecuteDdl("CREATE CUBE s (region string CARDINALITY 8 "
                            "RANGE 1, rev int)")
                  .ok());
  ASSERT_TRUE(db.Load("s", {{"US", 100},
                            {"BR", 300},
                            {"DE", 50},
                            {"US", 250},
                            {"JP", 120}})
                  .ok());
  Query q;
  q.group_by = {0};
  q.aggs = {{AggSpec::Fn::kSum, 0}};
  auto result = db.Query("s", q);
  auto top2 = result->TopK(0, AggSpec::Fn::kSum, 2);
  auto schema = db.FindSchema("s");
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(schema->dictionary(0)->Decode(top2[0].first[0]).value(), "US");
  EXPECT_DOUBLE_EQ(top2[0].second, 350.0);
  EXPECT_EQ(schema->dictionary(0)->Decode(top2[1].first[0]).value(), "BR");
}

TEST(DdlFuzzTest, MutatedStatementsNeverCrash) {
  const std::string base =
      "CREATE CUBE test_cube (region string CARDINALITY 4 RANGE 2, "
      "gender string CARDINALITY 4 RANGE 1, likes int, comments int)";
  Random rng(1234);
  int parsed_ok = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    std::string mutated = base;
    const int mutations = 1 + static_cast<int>(rng.Uniform(4));
    for (int m = 0; m < mutations; ++m) {
      const size_t pos = rng.Uniform(mutated.size());
      switch (rng.Uniform(3)) {
        case 0:  // flip a character
          mutated[pos] = static_cast<char>(' ' + rng.Uniform(95));
          break;
        case 1:  // delete a span
          mutated.erase(pos, 1 + rng.Uniform(5));
          break;
        default:  // duplicate a span
          mutated.insert(pos, mutated.substr(pos, 1 + rng.Uniform(5)));
          break;
      }
      if (mutated.empty()) mutated = "x";
    }
    auto result = ParseCreateCube(mutated);  // must not crash or hang
    if (result.ok()) ++parsed_ok;
  }
  // Sanity: the fuzzer actually hit both outcomes.
  EXPECT_GT(parsed_ok, 0);
  EXPECT_LT(parsed_ok, 3000);
}

TEST(CsvFuzzTest, MutatedLinesNeverCrash) {
  auto schema = CubeSchema::Make(
                    "c", {{"d", 16, 4, true}},
                    {{"m", DataType::kInt64}, {"x", DataType::kDouble}})
                    .value();
  Random rng(99);
  const std::string base = "hello,42,3.25";
  for (int trial = 0; trial < 3000; ++trial) {
    std::string mutated = base;
    const size_t pos = rng.Uniform(mutated.size());
    mutated[pos] = static_cast<char>(rng.Uniform(256));
    (void)ParseCsvLine(*schema, mutated);  // any Status is fine; no crash
  }
  SUCCEED();
}

}  // namespace
}  // namespace cubrick
