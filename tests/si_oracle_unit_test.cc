// Unit tests for the SI oracle itself (src/check/si_oracle.h) — the checker
// must not silently rot, since every stress assertion routes through it.

#include "check/si_oracle.h"

#include <gtest/gtest.h>

#include "storage/schema.h"

namespace cubrick::check {
namespace {

using aosi::Epoch;
using aosi::EpochSet;
using aosi::Snapshot;

std::shared_ptr<const CubeSchema> TestSchema() {
  auto schema = CubeSchema::Make(
      "t", {{"a", 8, 4, false}, {"b", 4, 4, false}},
      {{"m", DataType::kInt64}});
  EXPECT_TRUE(schema.ok());
  return *schema;
}

/// One record at coordinates (a, b) with metric value m.
Record Row(int64_t a, int64_t b, int64_t m) { return Record{a, b, m}; }

Snapshot At(Epoch epoch, std::vector<Epoch> deps = {}) {
  return Snapshot{epoch, EpochSet(std::move(deps))};
}

Query CountAll() {
  Query q;
  q.aggs = {{AggSpec::Fn::kCount, 0}, {AggSpec::Fn::kSum, 0}};
  return q;
}

TEST(SiOracleTest, VisibilityAtEpoch) {
  SiOracle oracle(TestSchema());
  oracle.Append(1, {Row(0, 0, 10)});
  oracle.Append(2, {Row(1, 0, 20), Row(5, 0, 21)});
  oracle.Append(4, {Row(2, 0, 30)});

  EXPECT_EQ(oracle.VisibleRows(At(0)), 0u);
  EXPECT_EQ(oracle.VisibleRows(At(1)), 1u);
  EXPECT_EQ(oracle.VisibleRows(At(2)), 3u);
  EXPECT_EQ(oracle.VisibleRows(At(3)), 3u);  // epoch 3 never wrote
  EXPECT_EQ(oracle.VisibleRows(At(4)), 4u);

  // A pending dependency is excluded even when its epoch is in range.
  EXPECT_EQ(oracle.VisibleRows(At(4, {2})), 2u);
  EXPECT_EQ(oracle.VisibleRows(At(4, {1, 2, 4})), 0u);
  EXPECT_EQ(oracle.LoggedRows(), 4u);
}

TEST(SiOracleTest, DeleteClearsLogicallyOlderRegardlessOfLogOrder) {
  SiOracle oracle(TestSchema());
  oracle.Append(3, {Row(0, 0, 1)});
  oracle.Delete(7, {0});  // brick 0 holds a in [0, 4)
  // Logged after the delete, but epoch 5 < 7 makes it logically older:
  // the §III-C3 rule clears it wherever it physically sits.
  oracle.Append(5, {Row(1, 0, 2)});

  EXPECT_EQ(oracle.VisibleRows(At(7)), 0u);
  // Snapshots that do not see the delete keep the rows.
  EXPECT_EQ(oracle.VisibleRows(At(4)), 1u);       // sees only epoch 3
  EXPECT_EQ(oracle.VisibleRows(At(6)), 2u);       // sees 3 and 5, not 7
  EXPECT_EQ(oracle.VisibleRows(At(7, {7})), 2u);  // delete pending in deps
}

TEST(SiOracleTest, DeleteOnlyCoversListedBricks) {
  SiOracle oracle(TestSchema());
  oracle.Append(2, {Row(0, 0, 1), Row(5, 0, 2)});  // bricks 0 and 1
  oracle.Delete(4, {0});

  EXPECT_EQ(oracle.VisibleRows(At(4)), 1u);  // brick 1 untouched
  Query q = CountAll();
  q.group_by = {0};
  const QueryResult r = oracle.Eval(At(4), q);
  ASSERT_EQ(r.num_groups(), 1u);
  EXPECT_EQ(r.Value({5}, 0, AggSpec::Fn::kCount), 1.0);
}

TEST(SiOracleTest, DeletersOwnRecordsSplitAtDeletePoint) {
  SiOracle oracle(TestSchema());
  // Same transaction: append, delete, append again in the same brick.
  oracle.Append(5, {Row(0, 0, 1), Row(1, 0, 2)});
  oracle.Delete(5, {0});
  oracle.Append(5, {Row(2, 0, 3)});

  // Only the post-delete-point append survives for any snapshot seeing 5.
  EXPECT_EQ(oracle.VisibleRows(At(5)), 1u);
  const QueryResult r = oracle.Eval(At(9), CountAll());
  EXPECT_EQ(r.Single(1, AggSpec::Fn::kSum), 3.0);
}

TEST(SiOracleTest, RollbackErasesAppendsAndMarkers) {
  SiOracle oracle(TestSchema());
  oracle.Append(2, {Row(0, 0, 1)});
  oracle.Append(3, {Row(1, 0, 2)});
  oracle.Delete(4, {0});
  EXPECT_EQ(oracle.VisibleRows(At(9)), 0u);

  // Rolling back the delete transaction resurrects older rows...
  oracle.Rollback(4);
  EXPECT_EQ(oracle.VisibleRows(At(9)), 2u);
  // ...and rolling back an append removes its rows for every snapshot.
  oracle.Rollback(3);
  EXPECT_EQ(oracle.VisibleRows(At(9)), 1u);
  EXPECT_EQ(oracle.LoggedRows(), 1u);
}

TEST(SiOracleTest, TruncateAfterDropsUndurableTail) {
  SiOracle oracle(TestSchema());
  oracle.Append(2, {Row(0, 0, 1)});
  oracle.Append(4, {Row(1, 0, 2)});
  oracle.Delete(6, {0});
  oracle.Append(8, {Row(2, 0, 3)});

  oracle.TruncateAfter(5);  // crash recovery to LSE=5: 6 and 8 are lost
  EXPECT_EQ(oracle.VisibleRows(At(9)), 2u);
  oracle.TruncateAfter(3);
  EXPECT_EQ(oracle.VisibleRows(At(9)), 1u);
}

TEST(SiOracleTest, EvalAppliesFiltersAndGroupBy) {
  SiOracle oracle(TestSchema());
  oracle.Append(1, {Row(0, 0, 10), Row(0, 1, 20), Row(1, 0, 30),
                    Row(5, 2, 40)});

  Query q;
  q.aggs = {{AggSpec::Fn::kSum, 0}, {AggSpec::Fn::kCount, 0}};
  FilterClause f;
  f.dim = 0;
  f.op = FilterClause::Op::kRange;
  f.range_lo = 0;
  f.range_hi = 1;
  q.filters = {f};
  q.group_by = {0};

  const QueryResult r = oracle.Eval(At(1), q);
  ASSERT_EQ(r.num_groups(), 2u);
  EXPECT_EQ(r.Value({0}, 0, AggSpec::Fn::kSum), 30.0);
  EXPECT_EQ(r.Value({0}, 1, AggSpec::Fn::kCount), 2.0);
  EXPECT_EQ(r.Value({1}, 0, AggSpec::Fn::kSum), 30.0);
}

TEST(SiOracleTest, DiffResultsDetectsEveryMismatchKind) {
  SiOracle oracle(TestSchema());
  oracle.Append(1, {Row(0, 0, 10)});
  oracle.Append(2, {Row(1, 0, 20)});

  Query q = CountAll();
  q.group_by = {0};
  const QueryResult at1 = oracle.Eval(At(1), q);
  const QueryResult at2 = oracle.Eval(At(2), q);

  EXPECT_EQ(DiffResults(at2, at2, q), "");
  // Engine missing a group the oracle expects.
  EXPECT_NE(DiffResults(at2, at1, q), "");
  // Engine returning a group the oracle does not expect.
  EXPECT_NE(DiffResults(at1, at2, q), "");

  // Mismatching aggregate inside a shared group.
  QueryResult wrong(q.aggs.size());
  wrong.Accumulate({0}, 0, 10.0);
  wrong.Accumulate({0}, 1, 10.0);
  wrong.Accumulate({0}, 1, 10.0);  // count 2 where oracle has 1
  EXPECT_NE(DiffResults(at1, wrong, q), "");
}

}  // namespace
}  // namespace cubrick::check
