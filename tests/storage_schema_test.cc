// Cube schema / granular-partitioning tests, reproducing the paper's
// Figure 4 example (the `test_cube` DDL with region/gender dimensions).

#include "storage/schema.h"

#include <gtest/gtest.h>

namespace cubrick {
namespace {

// CREATE CUBE test_cube (region string CARDINALITY 4 RANGE 2,
//                        gender string CARDINALITY 4 RANGE 1,
//                        likes int, comments int)
std::shared_ptr<CubeSchema> Figure4Schema() {
  auto result = CubeSchema::Make(
      "test_cube",
      {{"region", 4, 2, /*is_string=*/true},
       {"gender", 4, 1, /*is_string=*/true}},
      {{"likes", DataType::kInt64}, {"comments", DataType::kInt64}});
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.value();
}

TEST(SchemaTest, Figure4_BitLayout) {
  auto schema = Figure4Schema();
  // region: 4 values in ranges of 2 -> 2 ranges -> 1 bid bit.
  // gender: 4 values in ranges of 1 -> 4 ranges -> 2 bid bits.
  EXPECT_EQ(schema->dimensions()[0].num_ranges(), 2u);
  EXPECT_EQ(schema->dimensions()[1].num_ranges(), 4u);
  EXPECT_EQ(schema->bid_bits(), 3u);
  EXPECT_EQ(schema->MaxBricks(), 8u);
  // bess: offsets within ranges need 1 bit for region, 0 for gender.
  EXPECT_EQ(schema->bess_bits(0), 1u);
  EXPECT_EQ(schema->bess_bits(1), 0u);
  EXPECT_EQ(schema->bess_bits_per_record(), 1u);
}

TEST(SchemaTest, Figure4_BidComputation) {
  auto schema = Figure4Schema();
  // coords = (region, gender). region range idx = coord / 2 (bit 0);
  // gender range idx = coord (bits 1-2).
  EXPECT_EQ(schema->BidFor({0, 0}).value(), 0u);
  EXPECT_EQ(schema->BidFor({1, 0}).value(), 0u);  // same region range
  EXPECT_EQ(schema->BidFor({2, 0}).value(), 1u);
  EXPECT_EQ(schema->BidFor({0, 1}).value(), 2u);
  EXPECT_EQ(schema->BidFor({3, 3}).value(), 7u);
  EXPECT_EQ(schema->MaxBricks(), 8u);
}

TEST(SchemaTest, Figure4_RangeIndexRoundTrip) {
  auto schema = Figure4Schema();
  for (uint64_t region = 0; region < 4; ++region) {
    for (uint64_t gender = 0; gender < 4; ++gender) {
      const Bid bid = schema->BidFor({region, gender}).value();
      EXPECT_EQ(schema->RangeIndexOf(bid, 0), region / 2);
      EXPECT_EQ(schema->RangeIndexOf(bid, 1), gender);
    }
  }
}

TEST(SchemaTest, SplitCoord) {
  auto schema = Figure4Schema();
  uint64_t range_idx = 99, offset = 99;
  schema->SplitCoord(0, 3, &range_idx, &offset);
  EXPECT_EQ(range_idx, 1u);
  EXPECT_EQ(offset, 1u);
  schema->SplitCoord(1, 2, &range_idx, &offset);
  EXPECT_EQ(range_idx, 2u);
  EXPECT_EQ(offset, 0u);
}

TEST(SchemaTest, OutOfCardinalityCoordRejected) {
  auto schema = Figure4Schema();
  auto result = schema->BidFor({4, 0});
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST(SchemaTest, ArityMismatchRejected) {
  auto schema = Figure4Schema();
  EXPECT_EQ(schema->BidFor({1}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SchemaTest, DictionariesOnlyForStringColumns) {
  auto schema = Figure4Schema();
  EXPECT_NE(schema->dictionary(0), nullptr);  // region
  EXPECT_NE(schema->dictionary(1), nullptr);  // gender
  EXPECT_EQ(schema->dictionary(2), nullptr);  // likes
  EXPECT_EQ(schema->dictionary(3), nullptr);  // comments
}

TEST(SchemaTest, ColumnLookup) {
  auto schema = Figure4Schema();
  EXPECT_EQ(schema->DimensionIndex("gender").value(), 1u);
  EXPECT_EQ(schema->MetricIndex("comments").value(), 1u);
  EXPECT_EQ(schema->DimensionIndex("likes").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(schema->MetricIndex("region").status().code(),
            StatusCode::kNotFound);
}

TEST(SchemaTest, RejectsZeroCardinality) {
  auto result = CubeSchema::Make("bad", {{"d", 0, 1, false}}, {});
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, RejectsRangeLargerThanCardinality) {
  auto result = CubeSchema::Make("bad", {{"d", 4, 8, false}}, {});
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, RejectsDuplicateNames) {
  auto result = CubeSchema::Make(
      "bad", {{"x", 4, 1, false}}, {{"x", DataType::kInt64}});
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, RejectsEmptyName) {
  auto result = CubeSchema::Make("", {{"d", 2, 1, false}}, {});
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, RejectsOversizedBid) {
  // 5 dimensions x 16 bits each = 80 bits > 64.
  std::vector<DimensionDef> dims;
  for (int i = 0; i < 5; ++i) {
    dims.push_back({"d" + std::to_string(i), 65536, 1, false});
  }
  auto result = CubeSchema::Make("bad", dims, {});
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, NonPowerOfTwoRangeCounts) {
  // cardinality 10, range 3 -> 4 ranges -> 2 bits.
  auto schema =
      CubeSchema::Make("c", {{"d", 10, 3, false}}, {{"m", DataType::kInt64}})
          .value();
  EXPECT_EQ(schema->dimensions()[0].num_ranges(), 4u);
  EXPECT_EQ(schema->bid_bits(), 2u);
  EXPECT_EQ(schema->BidFor({9}).value(), 3u);
}

TEST(SchemaTest, BitsForCountEdgeCases) {
  EXPECT_EQ(BitsForCount(0), 0u);
  EXPECT_EQ(BitsForCount(1), 0u);
  EXPECT_EQ(BitsForCount(2), 1u);
  EXPECT_EQ(BitsForCount(3), 2u);
  EXPECT_EQ(BitsForCount(4), 2u);
  EXPECT_EQ(BitsForCount(5), 3u);
  EXPECT_EQ(BitsForCount(1ULL << 32), 32u);
}

}  // namespace
}  // namespace cubrick
