// Soak test: a long randomized cluster lifetime mixing every operation the
// system supports — loads, deletes, rollbacks, queries, checkpoints, purges,
// node crashes and recoveries — continuously validated against expected
// committed totals.

#include <gtest/gtest.h>

#include <filesystem>

#include "cluster/cluster.h"
#include "common/random.h"

namespace cubrick::cluster {
namespace {

namespace fs = std::filesystem;

class SoakTest : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SoakTest, ::testing::Range(0, 3));

TEST_P(SoakTest, FullSystemLifetime) {
  const auto dir = fs::temp_directory_path() /
                   ("cubrick_soak_" + std::to_string(GetParam()));
  fs::remove_all(dir);
  fs::create_directories(dir);

  ClusterOptions options;
  options.num_nodes = 3;
  options.replication_factor = 2;
  options.shards_per_cube = 2;
  options.data_dir = dir.string();
  Cluster cluster(options);
  ASSERT_TRUE(cluster
                  .ExecuteDdl("CREATE CUBE soak ("
                              "bucket int CARDINALITY 64 RANGE 4, v int)")
                  .ok());

  Random rng(20260705 + static_cast<uint64_t>(GetParam()) * 7919);
  int64_t live_sum = 0;       // sum of committed, not-deleted records
  uint64_t live_rows = 0;
  cubrick::Query q;
  q.aggs = {{AggSpec::Fn::kSum, 0}, {AggSpec::Fn::kCount, 0}};

  auto verify = [&](const char* when) {
    for (uint32_t n = 1; n <= 3; ++n) {
      if (!cluster.node(n).online()) continue;
      auto result = cluster.QueryOnce(n, "soak", q);
      ASSERT_TRUE(result.ok());
      ASSERT_DOUBLE_EQ(result->Single(0, AggSpec::Fn::kSum),
                       static_cast<double>(live_sum))
          << when << " node " << n;
      ASSERT_DOUBLE_EQ(result->Single(1, AggSpec::Fn::kCount),
                       static_cast<double>(live_rows))
          << when << " node " << n;
    }
  };

  for (int step = 0; step < 200; ++step) {
    const double dice = rng.NextDouble();
    const uint32_t coord = 1 + static_cast<uint32_t>(rng.Uniform(3));
    if (dice < 0.45) {
      // Committed load.
      auto txn = cluster.BeginReadWrite(coord);
      ASSERT_TRUE(txn.ok());
      std::vector<Record> rows;
      const uint64_t n = 1 + rng.Uniform(6);
      int64_t batch_sum = 0;
      for (uint64_t i = 0; i < n; ++i) {
        const int64_t v = static_cast<int64_t>(rng.Uniform(50));
        rows.push_back({static_cast<int64_t>(rng.Uniform(64)), v});
        batch_sum += v;
      }
      ASSERT_TRUE(cluster.Append(&*txn, "soak", rows).ok());
      ASSERT_TRUE(cluster.Commit(&*txn).ok());
      live_sum += batch_sum;
      live_rows += n;
    } else if (dice < 0.55) {
      // Aborted load: must leave no trace.
      auto txn = cluster.BeginReadWrite(coord);
      ASSERT_TRUE(txn.ok());
      ASSERT_TRUE(cluster.Append(&*txn, "soak", {{1, 9999}}).ok());
      ASSERT_TRUE(cluster.Rollback(&*txn).ok());
    } else if (dice < 0.63) {
      // Drop everything (partition-granular full delete).
      auto txn = cluster.BeginReadWrite(coord);
      ASSERT_TRUE(txn.ok());
      ASSERT_TRUE(cluster.DeleteWhere(&*txn, "soak", {}).ok());
      ASSERT_TRUE(cluster.Commit(&*txn).ok());
      live_sum = 0;
      live_rows = 0;
    } else if (dice < 0.75) {
      cluster.AdvanceClusterLSE();
      cluster.PurgeAll();
    } else if (dice < 0.85) {
      auto lse = cluster.CheckpointAll();
      ASSERT_TRUE(lse.ok()) << lse.status().ToString();
    } else if (dice < 0.93) {
      verify("probe");
    } else {
      // Crash + recover a random node.
      const uint32_t victim = 1 + static_cast<uint32_t>(rng.Uniform(3));
      ASSERT_TRUE(cluster.CrashNode(victim).ok());
      verify("during outage");
      ASSERT_TRUE(cluster.RecoverNode(victim).ok());
      verify("after recovery");
    }
  }
  verify("final");

  // Everything still works after the soak: one more full cycle.
  auto txn = cluster.BeginReadWrite(1);
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(cluster.Append(&*txn, "soak", {{0, 1}}).ok());
  ASSERT_TRUE(cluster.Commit(&*txn).ok());
  live_sum += 1;
  live_rows += 1;
  verify("post-soak");
  fs::remove_all(dir);
}

}  // namespace
}  // namespace cubrick::cluster
