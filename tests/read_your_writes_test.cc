// §IV-C fidelity: delaying LCE trades read-your-writes *between*
// transactions for simpler RO queries. "In two consecutive transactions
// from the same client, k and l, k might not be visible to l even after k
// is committed, if there is still any pending transaction p < k. ... if a
// client needs read-your-writes consistency, the operations must be done in
// the context of the same transaction."

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "cubrick/database.h"

namespace cubrick {
namespace {

TEST(ReadYourWritesTest, LostAcrossTransactionsWhileOlderPending) {
  Database db;
  ASSERT_TRUE(
      db.ExecuteDdl("CREATE CUBE c (k int CARDINALITY 4, v int)").ok());

  // p is an older transaction that stays pending.
  aosi::Txn p = db.Begin();
  // The client's first transaction k: load and commit.
  aosi::Txn k = db.Begin();
  ASSERT_TRUE(db.LoadIn(k, "c", {{0, 7}}).ok());
  ASSERT_TRUE(db.Commit(k).ok());

  // The client's next operation l — an ordinary (implicit RO) query —
  // does NOT see k: RO reads run at LCE, and LCE is stuck below k because
  // p < k is still pending.
  Query q;
  q.aggs = {{AggSpec::Fn::kSum, 0}};
  auto view = db.Query("c", q);
  ASSERT_TRUE(view.ok());
  EXPECT_DOUBLE_EQ(view->Single(0, AggSpec::Fn::kSum), 0.0)
      << "read-your-writes unexpectedly held; the paper explicitly gives "
         "it up";

  // Once p finishes, a new transaction sees k.
  ASSERT_TRUE(db.Commit(p).ok());
  auto after = db.Query("c", q);
  EXPECT_DOUBLE_EQ(after->Single(0, AggSpec::Fn::kSum), 7.0);
}

TEST(ReadYourWritesTest, WhyLIsBlind) {
  // The mechanism: l's snapshot epoch covers k (k < l, k not in deps —
  // k already committed when l began)... UNLESS k was still invisible via
  // LCE. For RW transactions the snapshot *does* include committed k; the
  // paper's statement concerns visibility through LCE-pinned reads. Verify
  // both behaviors precisely.
  Database db;
  ASSERT_TRUE(
      db.ExecuteDdl("CREATE CUBE c (k int CARDINALITY 4, v int)").ok());
  aosi::Txn p = db.Begin();
  aosi::Txn k = db.Begin();
  ASSERT_TRUE(db.LoadIn(k, "c", {{0, 7}}).ok());
  ASSERT_TRUE(db.Commit(k).ok());

  Query q;
  q.aggs = {{AggSpec::Fn::kSum, 0}};
  // A RW transaction l sees k directly (timestamp order, k committed and
  // not in l.deps):
  aosi::Txn l = db.Begin();
  EXPECT_FALSE(l.deps.Contains(k.epoch));
  auto rw_view = db.QueryIn(l, "c", q);
  EXPECT_DOUBLE_EQ(rw_view->Single(0, AggSpec::Fn::kSum), 7.0);
  ASSERT_TRUE(db.Commit(l).ok());
  // ...but an implicit RO query (pinned to LCE) does not:
  auto ro_view = db.Query("c", q);
  EXPECT_DOUBLE_EQ(ro_view->Single(0, AggSpec::Fn::kSum), 0.0);
  ASSERT_TRUE(db.Commit(p).ok());
}

TEST(ReadYourWritesTest, SameTransactionRemedy) {
  // The paper's prescription: do the operations inside one transaction.
  Database db;
  ASSERT_TRUE(
      db.ExecuteDdl("CREATE CUBE c (k int CARDINALITY 4, v int)").ok());
  aosi::Txn p = db.Begin();  // older pending noise
  aosi::Txn txn = db.Begin();
  ASSERT_TRUE(db.LoadIn(txn, "c", {{0, 7}}).ok());
  Query q;
  q.aggs = {{AggSpec::Fn::kSum, 0}};
  auto own = db.QueryIn(txn, "c", q);
  EXPECT_DOUBLE_EQ(own->Single(0, AggSpec::Fn::kSum), 7.0);
  ASSERT_TRUE(db.Commit(txn).ok());
  ASSERT_TRUE(db.Commit(p).ok());
}

TEST(ReadYourWritesTest, DistributedFlavor) {
  // Same effect across the cluster: node 2's client commits k, but node
  // 3's RO query can't see it while an older transaction from node 1 is
  // pending anywhere in the system.
  cluster::ClusterOptions options;
  options.num_nodes = 3;
  cluster::Cluster cluster(options);
  ASSERT_TRUE(cluster
                  .CreateCube("c", {{"k", 4, 1, false}},
                              {{"v", DataType::kInt64}})
                  .ok());
  auto p = cluster.BeginReadWrite(1);
  ASSERT_TRUE(p.ok());
  auto k = cluster.BeginReadWrite(2);
  ASSERT_TRUE(k.ok());
  ASSERT_TRUE(cluster.Append(&*k, "c", {{0, 7}}).ok());
  ASSERT_TRUE(cluster.Commit(&*k).ok());

  Query q;
  q.aggs = {{AggSpec::Fn::kSum, 0}};
  auto blind = cluster.QueryOnce(3, "c", q);
  EXPECT_DOUBLE_EQ(blind->Single(0, AggSpec::Fn::kSum), 0.0);
  ASSERT_TRUE(cluster.Commit(&*p).ok());
  auto sighted = cluster.QueryOnce(3, "c", q);
  EXPECT_DOUBLE_EQ(sighted->Single(0, AggSpec::Fn::kSum), 7.0);
}

}  // namespace
}  // namespace cubrick
