// aosi-lint-fixture: epoch-compare
// aosi-lint-as: src/check/bad_validator.cc
//
// Validation code in src/check re-derives visibility from epoch metadata;
// a raw integer comparison there silently encodes the wrong order the
// moment epochs become node-strided. The epoch-compare rule covers
// src/check like any other non-epoch-zone src/ directory.
#include <cstdint>

namespace cubrick::check {

using Epoch = uint64_t;

bool BadRunVisible(Epoch run_epoch, Epoch snapshot_epoch) {
  return run_epoch <= snapshot_epoch;
}

bool BadHorizonViolated(Epoch lse, Epoch horizon) { return lse > horizon; }

}  // namespace cubrick::check
