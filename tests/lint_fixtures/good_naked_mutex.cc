// aosi-lint-fixture: naked-mutex
// aosi-lint-as: src/example/good_mutex.cc
//
// The annotated wrappers from common/mutex.h are the sanctioned spelling.
#include "common/mutex.h"

namespace cubrick {

class GoodCounter {
 public:
  void Increment() {
    MutexLock lock(mutex_);
    ++value_;
  }

 private:
  Mutex mutex_;
  int value_ GUARDED_BY(mutex_) = 0;
};

}  // namespace cubrick
