// aosi-lint-fixture: atomic-memory-order
// aosi-lint-as: src/example/good_relaxed_rmw.cc
//
// A relaxed RMW is fine in src/ when the same (or preceding) line carries a
// '// relaxed: <why>' justification comment.
#include <atomic>

namespace cubrick {

std::atomic<unsigned long> hits{0};
std::atomic<unsigned long> misses{0};

void SameLineJustification() {
  hits.fetch_add(1, std::memory_order_relaxed);  // relaxed: plain tally
}

void PrecedingLineJustification() {
  // relaxed: tally only; the reader takes an acquire snapshot elsewhere.
  misses.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace cubrick
