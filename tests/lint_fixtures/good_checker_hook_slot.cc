// aosi-lint-fixture: checker-hook
// aosi-lint-as: src/query/good_hook_access.cc
//
// The sanctioned pattern: hook lookups go through GetCheckerHook() (acquire
// load under the hood) and installs through SetCheckerHook() (release
// store), so hook object construction happens-before any sampled call.
namespace cubrick::aosi {

class CheckerHook {
 public:
  virtual ~CheckerHook() = default;
  virtual void OnLseAdvance(unsigned long long lse) = 0;
};

CheckerHook* GetCheckerHook();
void SetCheckerHook(CheckerHook* hook);

void GoodSampledCall(unsigned long long lse) {
  if (CheckerHook* hook = GetCheckerHook()) hook->OnLseAdvance(lse);
}

void GoodInstall(CheckerHook* hook) { SetCheckerHook(hook); }

}  // namespace cubrick::aosi
