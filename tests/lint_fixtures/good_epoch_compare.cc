// aosi-lint-fixture: epoch-compare
// aosi-lint-as: src/example/good_epoch.cc
//
// Epoch relationships expressed through the src/aosi/epoch.h helpers; the
// only raw comparison is on a non-epoch identifier, which is fine.
#include <cstdint>

namespace cubrick {

using Epoch = uint64_t;

constexpr bool AtOrBefore(Epoch a, Epoch b) { return a <= b; }  // aosi-lint: allow(epoch-compare)

bool GoodVisibility(Epoch epoch, Epoch snapshot_epoch) {
  return AtOrBefore(epoch, snapshot_epoch);
}

bool UnrelatedCompare(uint64_t rows, uint64_t limit) { return rows < limit; }

}  // namespace cubrick
