// aosi-lint-fixture: naked-mutex
// aosi-lint-as: src/example/bad_mutex.cc
//
// Raw std::mutex / std::lock_guard outside src/common/mutex.h must be
// rejected: only the annotated wrappers carry thread-safety capabilities.
#include <mutex>

namespace cubrick {

class BadCounter {
 public:
  void Increment() {
    std::lock_guard<std::mutex> lock(mutex_);
    ++value_;
  }

 private:
  std::mutex mutex_;
  int value_ = 0;
};

}  // namespace cubrick
