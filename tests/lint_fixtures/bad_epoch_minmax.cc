// aosi-lint-fixture: epoch-compare
// aosi-lint-as: src/example/bad_epoch_minmax.cc
//
// std::min/std::max applied to epoch operands order epochs with raw integer
// comparison — the purge run-merge bug (src/aosi/purge.cc) — and must be
// rejected in favor of MinEpoch/MaxEpoch from src/aosi/epoch.h.
#include <algorithm>
#include <cstdint>

namespace cubrick {

using Epoch = uint64_t;

struct Run {
  Epoch epoch = 0;
};

Epoch BadMergeStamp(const Run& prev, const Run& next) {
  return std::max(prev.epoch, next.epoch);
}

Epoch BadClusterLce(Epoch cluster_lce, Epoch local_lse) {
  return std::max(cluster_lce, local_lse);
}

Epoch BadPurgeHorizon(Epoch lse, Epoch horizon) {
  return std::min(lse, horizon);
}

}  // namespace cubrick
