// aosi-lint-fixture: vis-cache-protocol
// aosi-lint-as: src/storage/brick_mutate.cc
//
// Mutates the epoch history without clearing the brick's visibility cache:
// bitmaps memoized against the old history version would keep serving
// stale row visibility.

namespace cubrick {

class EpochHistory;
class VisibilityCache;

class BrickState {
 public:
  void ApplyAppend();

 private:
  EpochHistory* history_;
  VisibilityCache* vis_cache_;
  int epoch_ = 0;
  int count_ = 0;
};

void BrickState::ApplyAppend() {
  history_->RecordAppend(epoch_, count_);
}

}  // namespace cubrick
