// aosi-lint-fixture: hold-across-blocking
// aosi-lint-as: src/engine/work_pool.cc
//
// Direct violation: Flush holds pool_mu_ across a TaskGroup-style Wait()
// (no arguments — releases nothing while blocked). The transitive flavor
// lives in flow_controller.cc, which calls Flush under its own lock.

#include "common/mutex.h"
#include "common/task_group.h"

namespace cubrick {

class WorkPool {
 public:
  void Flush();
  void Enqueue();

 private:
  TaskGroup group_;
  Mutex pool_mu_;
  int pending_ = 0;
};

void WorkPool::Flush() {
  MutexLock lock(pool_mu_);
  pending_ = 0;
  group_.Wait();
}

void WorkPool::Enqueue() {
  MutexLock lock(pool_mu_);
  pending_++;
}

}  // namespace cubrick
