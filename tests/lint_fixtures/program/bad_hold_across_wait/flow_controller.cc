// aosi-lint-as: src/engine/flow_controller.cc
//
// Transitive violation: Submit holds flow_mu_ across WorkPool::Flush,
// which blocks in group_.Wait() — only visible once both TUs are merged
// into the whole-program call graph.

#include "common/mutex.h"

namespace cubrick {

class WorkPool;

class FlowController {
 public:
  void Submit();

 private:
  WorkPool* pool_;
  Mutex flow_mu_;
  int submitted_ = 0;
};

void FlowController::Submit() {
  MutexLock lock(flow_mu_);
  submitted_++;
  pool_->Flush();
}

}  // namespace cubrick
