// aosi-lint-fixture: ebr-guard
// aosi-lint-as: src/query/scan_path.cc
//
// Dereference-without-pin: calls VisibilityCache::Lookup and
// EpochVector::PinnedSnapshot with no ebr::Guard declared anywhere in the
// function. The returned pointers are EBR-protected — the collector may
// free them the moment no pin covers the reading thread — so both calls
// must trip the ebr-guard pass.

namespace cubrick {

class VisibilityCache;
class EpochVector;
struct HistoryView;

class ScanPath {
 public:
  void ScanBrick();

 private:
  VisibilityCache* cache_;
  EpochVector* history_;
  unsigned long long key_ = 0;
};

void ScanPath::ScanBrick() {
  const void* bitmap = cache_->Lookup(key_);
  HistoryView* view = nullptr;
  history_->PinnedSnapshot(view);
  (void)bitmap;
}

}  // namespace cubrick
