// aosi-lint-as: src/ingest/dict_encode.cc
//
// Dictionary-snapshot misuse, both directions: AcquireSnapshot() is called
// with no ebr::Guard declared anywhere in the function (the returned
// DictSnapshot pointer is only valid while a pin covers the thread), and a
// displaced DictSnapshot is deleted raw instead of being routed through
// ebr::Retire/RetireDelete. Both must trip the ebr-guard pass.

namespace cubrick {

struct DictSnapshot {
  unsigned long long version;
};

class StringDictionary;

class DictEncode {
 public:
  void EncodeColumn();
  void DropStaleSnapshot(const DictSnapshot* stale);

 private:
  StringDictionary* dict_;
};

void DictEncode::EncodeColumn() {
  const void* snap = dict_->AcquireSnapshot();
  (void)snap;
}

void DictEncode::DropStaleSnapshot(const DictSnapshot* stale) {
  delete stale;
}

}  // namespace cubrick
