// aosi-lint-as: src/engine/purge_free.cc
//
// Raw delete of a retire-managed type (the vis-cache Entry) with no EBR
// deleter marker: a concurrent scan pinned before the unlink may still be
// reading the entry's bitmap, so this free must go through
// ebr::Retire/RetireDelete instead.

namespace cubrick {

struct Entry {
  unsigned long long key;
};

void DropDisplacedEntry(void* slot) {
  Entry* victim = static_cast<Entry*>(slot);
  delete victim;
}

}  // namespace cubrick
