// aosi-lint-fixture: hold-across-blocking
// aosi-lint-as: src/engine/work_pool.cc
//
// The canonical CondVar pattern: Await holds only pool_mu_ and waits on
// ready_cv_.Wait(lock), which releases that (innermost and only) lock for
// the duration of the wait — not a hold-across-blocking violation.

#include "common/mutex.h"

namespace cubrick {

class WorkPool {
 public:
  void Await();
  void Signal();

 private:
  Mutex pool_mu_;
  CondVar ready_cv_;
  bool ready_ = false;
};

void WorkPool::Await() {
  MutexLock lock(pool_mu_);
  while (!ready_) {
    ready_cv_.Wait(lock);
  }
}

void WorkPool::Signal() {
  MutexLock lock(pool_mu_);
  ready_ = true;
  ready_cv_.SignalAll();
}

}  // namespace cubrick
