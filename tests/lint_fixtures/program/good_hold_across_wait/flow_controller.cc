// aosi-lint-as: src/engine/flow_controller.cc
//
// Snapshot-then-release: Submit updates its own state under flow_mu_,
// drops the lock at the end of the scope, and only then calls into the
// pool's blocking Await — no lock held across the wait.

#include "common/mutex.h"

namespace cubrick {

class WorkPool;

class FlowController {
 public:
  void Submit();

 private:
  WorkPool* pool_;
  Mutex flow_mu_;
  int submitted_ = 0;
};

void FlowController::Submit() {
  {
    MutexLock lock(flow_mu_);
    submitted_++;
  }
  pool_->Await();
}

}  // namespace cubrick
