// aosi-lint-fixture: vis-cache-protocol
// aosi-lint-as: src/query/scan_exec.cc
//
// Publishes a visibility bitmap without building a versioned VisKey first:
// the key the bitmap is stored under may describe a different history
// version than the one the bitmap was computed against.

namespace cubrick {

class VisibilityCache;

class ScanExec {
 public:
  void CacheBitmap();

 private:
  VisibilityCache* cache_;
  unsigned long long bits_ = 0;
  int brick_id_ = 0;
};

void ScanExec::CacheBitmap() {
  cache_->Publish(brick_id_, bits_);
}

}  // namespace cubrick
