// aosi-lint-fixture: ebr-guard
// aosi-lint-as: src/query/scan_path.cc
//
// The compliant counterpart of bad_ebr_guard: every EBR-protected read is
// dominated by an ebr::Guard declaration in the same function, and the
// retire-managed Entry is handed to ebr::RetireDelete instead of being
// deleted raw. The program pass must stay silent.

namespace cubrick {

namespace ebr {
class Guard {
 public:
  Guard();
  ~Guard();
};
template <typename T>
void RetireDelete(const T* ptr, unsigned long long extra_bytes);
}  // namespace ebr

class VisibilityCache;
class EpochVector;
struct HistoryView;

struct Entry {
  unsigned long long key;
};

class ScanPath {
 public:
  void ScanBrick();
  void DropDisplacedEntry(const Entry* victim);

 private:
  VisibilityCache* cache_;
  EpochVector* history_;
  unsigned long long key_ = 0;
};

void ScanPath::ScanBrick() {
  const ebr::Guard guard;
  const void* bitmap = cache_->Lookup(key_);
  HistoryView* view = nullptr;
  history_->PinnedSnapshot(view);
  (void)bitmap;
}

void ScanPath::DropDisplacedEntry(const Entry* victim) {
  ebr::RetireDelete(victim, 0);
}

}  // namespace cubrick
