// aosi-lint-as: src/ingest/dict_encode.cc
//
// The compliant dictionary-snapshot counterpart: AcquireSnapshot() is
// dominated by an ebr::Guard in the same function, and the displaced
// DictSnapshot goes through ebr::RetireDelete. The program pass must stay
// silent.

namespace cubrick {

namespace ebr {
class Guard {
 public:
  Guard();
  ~Guard();
};
template <typename T>
void RetireDelete(const T* ptr, unsigned long long extra_bytes);
}  // namespace ebr

struct DictSnapshot {
  unsigned long long version;
};

class StringDictionary;

class DictEncode {
 public:
  void EncodeColumn();
  void DropStaleSnapshot(const DictSnapshot* stale);

 private:
  StringDictionary* dict_;
};

void DictEncode::EncodeColumn() {
  const ebr::Guard guard;
  const void* snap = dict_->AcquireSnapshot();
  (void)snap;
}

void DictEncode::DropStaleSnapshot(const DictSnapshot* stale) {
  ebr::RetireDelete(stale, 0);
}

}  // namespace cubrick
