// aosi-lint-as: src/engine/alpha_service.cc
//
// Consistent-ordering counterpart of bad_lock_cycle: alpha -> beta is the
// only ordering anywhere in the program, so no cycle exists.

#include "common/mutex.h"

namespace cubrick {

class BetaService;

class AlphaService {
 public:
  void Tick();
  void Bump();

 private:
  BetaService* beta_;
  Mutex alpha_mu_;
  int ticks_ = 0;
};

void AlphaService::Tick() {
  MutexLock lock(alpha_mu_);
  ticks_++;
  beta_->Poke();
}

void AlphaService::Bump() {
  MutexLock lock(alpha_mu_);
  ticks_++;
}

}  // namespace cubrick
