// aosi-lint-fixture: lock-cycle
// aosi-lint-as: src/engine/beta_service.cc
//
// Refresh calls back into AlphaService *before* taking its own lock, so
// the beta -> alpha ordering never forms and the program stays acyclic.

#include "common/mutex.h"

namespace cubrick {

class AlphaService;

class BetaService {
 public:
  void Poke();
  void Refresh();

 private:
  AlphaService* alpha_;
  Mutex beta_mu_;
  int pokes_ = 0;
};

void BetaService::Poke() {
  MutexLock lock(beta_mu_);
  pokes_++;
}

void BetaService::Refresh() {
  alpha_->Tick();
  MutexLock lock(beta_mu_);
  pokes_ = 0;
}

}  // namespace cubrick
