// aosi-lint-fixture: checker-hook-gate
// aosi-lint-as: src/engine/commit_path.cc
//
// The hook call sits behind the GetCheckerHook() enabled-load in the same
// function — the sanctioned pattern.

namespace cubrick {

class CheckerHook;

class CommitPath {
 public:
  void Finish();

 private:
  int epoch_ = 0;
};

void CommitPath::Finish() {
  if (CheckerHook* hook = GetCheckerHook()) {
    hook->OnFinish(epoch_, true);
  }
}

}  // namespace cubrick
