// aosi-lint-fixture: checker-hook-gate
// aosi-lint-as: src/engine/commit_path.cc
//
// Invokes a checker hook through a cached pointer without the dominating
// GetCheckerHook() enabled-load: the hooks-off fast path must stay a
// single relaxed load, and a cached pointer can outlive the checker.

namespace cubrick {

class CheckerHook;

class CommitPath {
 public:
  void Finish();

 private:
  CheckerHook* hook_;
  int epoch_ = 0;
};

void CommitPath::Finish() {
  hook_->OnFinish(epoch_, true);
}

}  // namespace cubrick
