// aosi-lint-fixture: vis-cache-protocol
// aosi-lint-as: src/storage/brick_mutate.cc
//
// The history mutation is paired with a vis-cache Clear before returning,
// invalidating any bitmap memoized against the previous history version.

namespace cubrick {

class EpochHistory;
class VisibilityCache;

class BrickState {
 public:
  void ApplyAppend();

 private:
  EpochHistory* history_;
  VisibilityCache* vis_cache_;
  int epoch_ = 0;
  int count_ = 0;
};

void BrickState::ApplyAppend() {
  history_->RecordAppend(epoch_, count_);
  vis_cache_->Clear();
}

}  // namespace cubrick
