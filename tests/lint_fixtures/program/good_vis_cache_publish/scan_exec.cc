// aosi-lint-fixture: vis-cache-protocol
// aosi-lint-as: src/query/scan_exec.cc
//
// The publish is dominated by a MakeKey build in the same function, so the
// cache entry's key and the bitmap were derived from the same history
// version.

namespace cubrick {

class VisibilityCache;

class ScanExec {
 public:
  void CacheBitmap();

 private:
  VisibilityCache* cache_;
  unsigned long long bits_ = 0;
  int brick_id_ = 0;
  int horizon_ = 0;
};

void ScanExec::CacheBitmap() {
  const auto key = cache_->MakeKey(brick_id_, horizon_);
  cache_->Publish(key, bits_);
}

}  // namespace cubrick
