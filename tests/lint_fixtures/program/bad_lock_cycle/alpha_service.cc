// aosi-lint-as: src/engine/alpha_service.cc
//
// Half of a seeded two-TU lock inversion: AlphaService::Tick acquires
// alpha_mu_ and then calls into BetaService, which acquires beta_mu_ —
// the alpha -> beta ordering. The reverse ordering lives in
// beta_service.cc; only the whole-program pass can see the cycle.

#include "common/mutex.h"

namespace cubrick {

class BetaService;

class AlphaService {
 public:
  void Tick();
  void Bump();

 private:
  BetaService* beta_;
  Mutex alpha_mu_;
  int ticks_ = 0;
};

void AlphaService::Tick() {
  MutexLock lock(alpha_mu_);
  ticks_++;
  beta_->Poke();
}

void AlphaService::Bump() {
  MutexLock lock(alpha_mu_);
  ticks_++;
}

}  // namespace cubrick
