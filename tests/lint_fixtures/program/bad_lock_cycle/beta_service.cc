// aosi-lint-fixture: lock-cycle
// aosi-lint-as: src/engine/beta_service.cc
//
// The other half of the inversion: BetaService::Refresh acquires beta_mu_
// and then calls AlphaService::Tick, which acquires alpha_mu_ — the
// beta -> alpha ordering, closing the cycle against alpha_service.cc.

#include "common/mutex.h"

namespace cubrick {

class AlphaService;

class BetaService {
 public:
  void Poke();
  void Refresh();

 private:
  AlphaService* alpha_;
  Mutex beta_mu_;
  int pokes_ = 0;
};

void BetaService::Poke() {
  MutexLock lock(beta_mu_);
  pokes_++;
}

void BetaService::Refresh() {
  MutexLock lock(beta_mu_);
  pokes_ = 0;
  alpha_->Tick();
}

}  // namespace cubrick
