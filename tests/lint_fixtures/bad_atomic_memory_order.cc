// aosi-lint-fixture: atomic-memory-order
// aosi-lint-as: src/example/bad_atomic.cc
//
// Implicit-seq_cst atomic operations and operator forms must be rejected.
#include <atomic>

namespace cubrick {

std::atomic<int> counter{0};

int BadLoad() { return counter.load(); }
void BadStore(int v) { counter.store(v); }
void BadRmw() { counter.fetch_add(1); }
void BadOperator() { ++counter; }

}  // namespace cubrick
