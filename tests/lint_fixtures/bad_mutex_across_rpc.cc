// aosi-lint-fixture: mutex-across-rpc
// aosi-lint-as: src/cluster/bad_fanout.cc
//
// Holding a lock while fanning out to another node's RPC surface can
// deadlock the simulated message bus; the call must happen unlocked.
#include "common/mutex.h"

namespace cubrick::cluster {

class ClusterNode;
int HandleFinish(ClusterNode& node);

class BadFanout {
 public:
  void FinishAll() {
    MutexLock lock(mutex_);
    for (ClusterNode* node : nodes_) {
      HandleFinish(*node);  // RPC while mutex_ is held
    }
  }

 private:
  Mutex mutex_;
  ClusterNode* nodes_[4] GUARDED_BY(mutex_) = {};
};

}  // namespace cubrick::cluster
