// aosi-lint-fixture: epoch-compare
// aosi-lint-as: src/example/good_epoch_minmax.cc
//
// Epoch ordering expressed through MinEpoch/MaxEpoch; std::min/std::max on
// non-epoch values stays allowed (and so does an explicit Epoch template
// argument whose operands are not epoch-named — the rule keys on operand
// names, like the comparison-operator half of epoch-compare).
#include <algorithm>
#include <cstdint>

namespace cubrick {

using Epoch = uint64_t;

// aosi-lint: allow(epoch-compare)
constexpr Epoch MaxEpoch(Epoch a, Epoch b) { return a > b ? a : b; }

struct Run {
  Epoch epoch = 0;
};

Epoch GoodMergeStamp(const Run& prev, const Run& next) {
  return MaxEpoch(prev.epoch, next.epoch);
}

uint64_t GoodRowClamp(uint64_t run_end, uint64_t delete_point) {
  return std::min(run_end, delete_point);
}

size_t GoodFanOut(size_t parallelism, size_t morsels) {
  return std::min(parallelism, morsels);
}

}  // namespace cubrick
