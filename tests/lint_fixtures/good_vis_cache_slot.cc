// aosi-lint-fixture: atomic-memory-order
// aosi-lint-as: src/aosi/vis_cache_slot_fixture.cc
//
// The visibility-cache slot discipline (src/aosi/vis_cache.cc): entries are
// published with an explicit release-flavored exchange, read with acquire
// loads, and the only relaxed RMW — the round-robin victim cursor — carries
// a '// relaxed: <why>' justification. Every order is spelled out.
#include <atomic>
#include <cstddef>

namespace cubrick {

struct Entry {
  int payload = 0;
};

std::atomic<const Entry*> slot{nullptr};
std::atomic<unsigned long> next_victim{0};

const Entry* LookupSlot() {
  // acquire pairs with the release exchange in PublishSlot.
  return slot.load(std::memory_order_acquire);
}

const Entry* PublishSlot(const Entry* entry) {
  // relaxed: the cursor only spreads victims across slots; no data rides on it
  const auto cursor = next_victim.fetch_add(1, std::memory_order_relaxed);
  (void)cursor;
  return slot.exchange(entry, std::memory_order_acq_rel);
}

}  // namespace cubrick
