// aosi-lint-fixture: epoch-compare
// aosi-lint-as: src/check/good_validator.cc
//
// src/check validation logic expressed through the src/aosi/epoch.h
// helpers: AtOrBefore for snapshot membership, After for the LSE-vs-horizon
// cross-check. Raw comparisons only touch non-epoch identifiers (counts).
#include <cstdint>

namespace cubrick::check {

using Epoch = uint64_t;

constexpr bool AtOrBefore(Epoch a, Epoch b) { return a <= b; }  // aosi-lint: allow(epoch-compare)
constexpr bool After(Epoch a, Epoch b) { return a > b; }  // aosi-lint: allow(epoch-compare)

bool GoodRunVisible(Epoch run_epoch, Epoch snapshot_epoch) {
  return AtOrBefore(run_epoch, snapshot_epoch);
}

bool GoodHorizonViolated(Epoch lse, Epoch horizon) {
  return After(lse, horizon);
}

bool UnrelatedCompare(uint64_t observed, uint64_t expected) {
  return observed != expected;
}

}  // namespace cubrick::check
