// aosi-lint-fixture: mutex-across-rpc
// aosi-lint-as: src/cluster/good_fanout.cc
//
// Snapshot the target list under the lock, drop it, then issue the RPCs.
#include <cstddef>

#include "common/mutex.h"

namespace cubrick::cluster {

class ClusterNode;
int HandleFinish(ClusterNode& node);

class GoodFanout {
 public:
  void FinishAll() {
    ClusterNode* targets[4] = {};
    size_t n = 0;
    {
      MutexLock lock(mutex_);
      for (ClusterNode* node : nodes_) targets[n++] = node;
    }
    for (size_t i = 0; i < n; ++i) {
      HandleFinish(*targets[i]);
    }
  }

 private:
  Mutex mutex_;
  ClusterNode* nodes_[4] GUARDED_BY(mutex_) = {};
};

}  // namespace cubrick::cluster
