// aosi-lint-fixture: atomic-memory-order
// aosi-lint-as: src/example/good_atomic.cc
//
// Every atomic op names its ordering; nothing to report.
#include <atomic>

namespace cubrick {

std::atomic<int> counter{0};

int GoodLoad() { return counter.load(std::memory_order_acquire); }
void GoodStore(int v) { counter.store(v, std::memory_order_release); }
// relaxed: fixture counter is a plain tally; no ordering needed.
void GoodRmw() { counter.fetch_add(1, std::memory_order_relaxed); }

}  // namespace cubrick
