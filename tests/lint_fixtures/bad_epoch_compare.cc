// aosi-lint-fixture: epoch-compare
// aosi-lint-as: src/example/bad_epoch.cc
//
// Raw relational/equality operators on epoch-like identifiers outside
// src/aosi/epoch* must be rejected in favor of the named helpers.
#include <cstdint>

namespace cubrick {

using Epoch = uint64_t;

bool BadVisibility(Epoch epoch, Epoch snapshot_epoch) {
  return epoch <= snapshot_epoch;
}

bool BadHorizonCheck(Epoch lse, Epoch horizon) { return lse < horizon; }

}  // namespace cubrick
