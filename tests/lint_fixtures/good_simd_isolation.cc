// aosi-lint-fixture: simd-isolation
// aosi-lint-as: src/query/simd_isolation_fixture.cc
//
// The legal shape: scan code calls through the simd::ActiveKernels()
// dispatch table, which keeps the scalar fallback and runtime detection in
// one place (src/common/simd.*).
#include <cstdint>

namespace cubrick::simd {
struct Kernels {
  uint64_t (*filter_eq)(const uint64_t* coords, uint64_t value);
};
const Kernels& ActiveKernels();
}  // namespace cubrick::simd

namespace cubrick {

uint64_t GoodDispatchedCompare(const uint64_t* coords, uint64_t value) {
  return simd::ActiveKernels().filter_eq(coords, value);
}

}  // namespace cubrick
