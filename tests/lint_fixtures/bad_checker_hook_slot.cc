// aosi-lint-fixture: checker-hook
// aosi-lint-as: src/query/bad_hook_access.cc
//
// Reaching into the process-global hook slot directly bypasses the
// acquire/release discipline GetCheckerHook()/SetCheckerHook() encode: a
// plain (or relaxed) slot read could observe a checker object whose
// constructor writes have not been published yet.
#include <atomic>

namespace cubrick::aosi {

class CheckerHook;

namespace internal {
std::atomic<CheckerHook*>& CheckerHookSlot();
}  // namespace internal

CheckerHook* BadDirectRead() {
  return internal::CheckerHookSlot().load(std::memory_order_relaxed);
}

void BadDirectInstall(CheckerHook* hook) {
  internal::CheckerHookSlot().store(hook, std::memory_order_relaxed);
}

}  // namespace cubrick::aosi
