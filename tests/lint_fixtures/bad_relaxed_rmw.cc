// aosi-lint-fixture: atomic-memory-order
// aosi-lint-as: src/example/bad_relaxed_rmw.cc
//
// A relaxed RMW in src/ without a '// relaxed: <why>' justification comment
// must be flagged: the order is explicit, but dropping the
// synchronizes-with edge needs a stated reason.
#include <atomic>

namespace cubrick {

std::atomic<unsigned long> hits{0};

void BadRelaxedRmw() { hits.fetch_add(1, std::memory_order_relaxed); }

}  // namespace cubrick
