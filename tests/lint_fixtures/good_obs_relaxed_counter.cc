// aosi-lint-fixture: atomic-memory-order
// aosi-lint-as: src/obs/example_counter.h
//
// The src/obs carve-out: metric instruments use relaxed RMW writes by
// documented policy (docs/OBSERVABILITY.md), so no per-site justification
// comment is required inside src/obs/.
#include <atomic>

namespace cubrick::obs {

class ExampleCounter {
 public:
  void Add(unsigned long n) { v_.fetch_add(n, std::memory_order_relaxed); }
  unsigned long Value() const { return v_.load(std::memory_order_acquire); }

 private:
  std::atomic<unsigned long> v_{0};
};

}  // namespace cubrick::obs
