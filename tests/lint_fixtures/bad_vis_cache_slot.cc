// aosi-lint-fixture: atomic-memory-order
// aosi-lint-as: src/aosi/vis_cache_slot_fixture.cc
//
// Cache-slot atomics must carry explicit memory orders (an implicit
// seq_cst exchange hides the publication protocol) and any relaxed RMW —
// like a victim cursor — needs a '// relaxed: <why>' justification.
#include <atomic>

namespace cubrick {

struct Entry {
  int payload = 0;
};

std::atomic<const Entry*> slot{nullptr};
std::atomic<unsigned long> next_victim{0};

const Entry* BadImplicitPublish(const Entry* entry) {
  return slot.exchange(entry);
}

unsigned long BadUnjustifiedCursor() {
  return next_victim.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace cubrick
