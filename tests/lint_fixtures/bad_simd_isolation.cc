// aosi-lint-fixture: simd-isolation
// aosi-lint-as: src/query/simd_isolation_fixture.cc
//
// Raw intrinsics, intrinsic headers and the CPUID probe are forbidden in
// src/ outside src/common/simd.* — a call site that open-codes AVX2 has no
// scalar fallback and escapes the differential backend tests.
#include <immintrin.h>

#include <cstdint>

namespace cubrick {

uint64_t BadOpenCodedCompare(const uint64_t* coords, uint64_t value) {
  const __m256i v = _mm256_set1_epi64x(static_cast<long long>(value));
  uint64_t mask = 0;
  for (int i = 0; i < 64; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(coords + i));
    const __m256i eq = _mm256_cmpeq_epi64(x, v);
    mask |= static_cast<uint64_t>(
                _mm256_movemask_pd(_mm256_castsi256_pd(eq)))
            << i;
  }
  return mask;
}

bool BadInlineCpuProbe() { return __builtin_cpu_supports("avx2"); }

}  // namespace cubrick
