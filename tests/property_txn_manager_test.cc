// Randomized transaction-manager schedules: begins, commits, rollbacks and
// RO snapshots interleaved across threads, checked against the protocol
// invariants of §III-B.

#include <gtest/gtest.h>

#include <thread>

#include "aosi/txn_manager.h"
#include "common/random.h"

namespace cubrick::aosi {
namespace {

class RandomScheduleTest : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Seeds, RandomScheduleTest, ::testing::Range(0, 8));

TEST_P(RandomScheduleTest, SingleThreadInvariants) {
  Random rng(100 + static_cast<uint64_t>(GetParam()));
  TxnManager tm;
  std::vector<Txn> open;
  std::vector<Epoch> committed;
  Epoch max_committed_watched = 0;

  for (int step = 0; step < 300; ++step) {
    // Invariant 1: EC > LCE >= LSE.
    ASSERT_GT(tm.EC(), tm.LCE());
    ASSERT_GE(tm.LCE(), tm.LSE());

    const double dice = rng.NextDouble();
    if (dice < 0.4 || open.empty()) {
      Txn t = tm.BeginReadWrite();
      // deps must be exactly the currently-open older transactions.
      EpochSet expected;
      for (const auto& o : open) {
        if (o.epoch < t.epoch) expected.Insert(o.epoch);
      }
      ASSERT_EQ(t.deps, expected);
      open.push_back(t);
    } else if (dice < 0.75) {
      const size_t pick = rng.Uniform(open.size());
      ASSERT_TRUE(tm.Commit(open[pick]).ok());
      committed.push_back(open[pick].epoch);
      max_committed_watched =
          std::max(max_committed_watched, open[pick].epoch);
      open.erase(open.begin() + static_cast<ptrdiff_t>(pick));
    } else if (dice < 0.9) {
      const size_t pick = rng.Uniform(open.size());
      ASSERT_TRUE(tm.Rollback(open[pick]).ok());
      open.erase(open.begin() + static_cast<ptrdiff_t>(pick));
    } else {
      // RO probe: snapshot epoch must be committed-prefix-safe: every
      // committed epoch <= LCE, and no open txn <= LCE.
      Txn ro = tm.BeginReadOnly();
      for (const auto& o : open) {
        ASSERT_GT(o.epoch, ro.epoch)
            << "RO snapshot " << ro.epoch << " includes pending txn";
      }
      tm.EndReadOnly(ro);
    }

    // LCE must never exceed a pending epoch's predecessor.
    for (const auto& o : open) {
      ASSERT_LT(tm.LCE(), o.epoch);
    }
    // LSE can always be advanced to at most LCE.
    const Epoch lse = tm.TryAdvanceLSE(tm.LCE());
    ASSERT_LE(lse, tm.LCE());
  }

  // Drain: commit everything; LCE must land on the max committed epoch.
  for (const auto& o : open) {
    ASSERT_TRUE(tm.Commit(o).ok());
    max_committed_watched = std::max(max_committed_watched, o.epoch);
  }
  EXPECT_EQ(tm.LCE(), max_committed_watched);
  EXPECT_TRUE(tm.PendingTxs().empty());
  EXPECT_EQ(tm.NumTracked(), 0u);
}

TEST_P(RandomScheduleTest, MultiThreadInvariants) {
  Random seed_gen(200 + static_cast<uint64_t>(GetParam()));
  TxnManager tm;
  std::atomic<bool> failed{false};
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&, w] {
      Random rng(300 + static_cast<uint64_t>(w) * 7919 +
                 static_cast<uint64_t>(GetParam()));
      std::vector<Txn> mine;
      for (int step = 0; step < 200; ++step) {
        // Read order matters under concurrency: LCE first (a stale, smaller
        // value), then EC (which only grows) — EC > LCE must still hold.
        const Epoch lse = tm.LSE();
        const Epoch lce = tm.LCE();
        const Epoch ec = tm.EC();
        if (ec <= lce || lce < lse) {
          failed.store(true, std::memory_order_seq_cst);
          return;
        }
        if (rng.NextDouble() < 0.5 || mine.empty()) {
          mine.push_back(tm.BeginReadWrite());
        } else {
          const size_t pick = rng.Uniform(mine.size());
          const bool commit = !rng.OneIn(5);
          const Status status = commit ? tm.Commit(mine[pick])
                                       : tm.Rollback(mine[pick]);
          if (!status.ok()) {
            failed.store(true, std::memory_order_seq_cst);
            return;
          }
          mine.erase(mine.begin() + static_cast<ptrdiff_t>(pick));
        }
        if (rng.OneIn(10)) {
          Txn ro = tm.BeginReadOnly();
          // The snapshot must stay stable: LCE at or after our epoch.
          if (tm.LCE() < ro.epoch) {
            failed.store(true, std::memory_order_seq_cst);
            return;
          }
          tm.EndReadOnly(ro);
        }
      }
      for (const auto& t : mine) {
        if (!tm.Commit(t).ok()) {
          failed.store(true, std::memory_order_seq_cst);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_FALSE(failed.load(std::memory_order_seq_cst));
  EXPECT_TRUE(tm.PendingTxs().empty());
  EXPECT_EQ(tm.NumTracked(), 0u);
  EXPECT_GT(tm.EC(), tm.LCE());
}

TEST_P(RandomScheduleTest, LseHorizonNeverPassesActiveSnapshots) {
  Random rng(400 + static_cast<uint64_t>(GetParam()));
  TxnManager tm;
  std::vector<Txn> open_rw;
  std::vector<Txn> open_ro;
  for (int step = 0; step < 200; ++step) {
    const double dice = rng.NextDouble();
    if (dice < 0.35) {
      open_rw.push_back(tm.BeginReadWrite());
    } else if (dice < 0.55 && !open_rw.empty()) {
      const size_t pick = rng.Uniform(open_rw.size());
      ASSERT_TRUE(tm.Commit(open_rw[pick]).ok());
      open_rw.erase(open_rw.begin() + static_cast<ptrdiff_t>(pick));
    } else if (dice < 0.7) {
      open_ro.push_back(tm.BeginReadOnly());
    } else if (dice < 0.85 && !open_ro.empty()) {
      tm.EndReadOnly(open_ro.back());
      open_ro.pop_back();
    } else {
      const Epoch lse = tm.TryAdvanceLSE(tm.LCE());
      for (const auto& t : open_rw) {
        ASSERT_LE(lse, t.Horizon());
      }
      for (const auto& t : open_ro) {
        ASSERT_LE(lse, t.Horizon());
      }
    }
  }
}

}  // namespace
}  // namespace cubrick::aosi
