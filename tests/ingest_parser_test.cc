// Ingestion parsing/validation tests: encoding, rejection, max_rejected
// batch-discard semantics, and CSV loading.

#include "ingest/parser.h"

#include <gtest/gtest.h>

namespace cubrick {
namespace {

std::shared_ptr<CubeSchema> MakeSchema() {
  return CubeSchema::Make(
             "test_cube",
             {{"region", 4, 2, /*is_string=*/true},
              {"gender", 4, 1, /*is_string=*/true}},
             {{"likes", DataType::kInt64}, {"comments", DataType::kInt64}})
      .value();
}

TEST(ParserTest, EncodesStringsThroughDictionary) {
  auto schema = MakeSchema();
  auto out = ParseRecords(*schema, {{"CA", "male", 1, 2},
                                    {"CA", "female", 3, 4},
                                    {"NY", "male", 5, 6}});
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->accepted, 3u);
  EXPECT_EQ(out->rejected, 0u);
  EXPECT_EQ(schema->dictionary(0)->size(), 2u);  // CA, NY
  EXPECT_EQ(schema->dictionary(1)->size(), 2u);  // male, female
  // CA=0 and NY=1 share region range [0,1] -> same region range index; the
  // two gender values produce distinct bricks.
  EXPECT_EQ(out->batches.size(), 2u);
}

TEST(ParserTest, GroupsRecordsPerBrick) {
  auto schema = MakeSchema();
  auto out = ParseRecords(*schema, {{"a", "x", 1, 0},
                                    {"b", "x", 2, 0},
                                    {"a", "y", 4, 0}});
  ASSERT_TRUE(out.ok());
  // a=0,b=1 same region range; x and y different gender ranges: 2 bricks.
  ASSERT_EQ(out->batches.size(), 2u);
  uint64_t total = 0;
  for (const auto& [bid, batch] : out->batches) {
    total += batch.num_rows;
    EXPECT_EQ(batch.metric_ints[0].size(), batch.num_rows);
  }
  EXPECT_EQ(total, 3u);
}

TEST(ParserTest, RejectsWrongArity) {
  auto schema = MakeSchema();
  ParseOptions opts;
  opts.max_rejected = 10;
  auto out = ParseRecords(*schema, {{"a", "x", 1}}, opts);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->accepted, 0u);
  EXPECT_EQ(out->rejected, 1u);
  ASSERT_FALSE(out->errors.empty());
}

TEST(ParserTest, RejectsCardinalityOverflow) {
  auto schema = MakeSchema();
  ParseOptions opts;
  opts.max_rejected = 10;
  // 5 distinct region strings against cardinality 4: the 5th must reject.
  auto out = ParseRecords(*schema,
                          {{"r0", "x", 1, 1},
                           {"r1", "x", 1, 1},
                           {"r2", "x", 1, 1},
                           {"r3", "x", 1, 1},
                           {"r4", "x", 1, 1}},
                          opts);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->accepted, 4u);
  EXPECT_EQ(out->rejected, 1u);
}

TEST(ParserTest, RejectsBadMetricType) {
  auto schema = MakeSchema();
  ParseOptions opts;
  opts.max_rejected = 10;
  auto out = ParseRecords(*schema, {{"a", "x", "oops", 2}}, opts);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->rejected, 1u);
}

TEST(ParserTest, MaxRejectedDiscardsWholeBatch) {
  auto schema = MakeSchema();
  ParseOptions opts;
  opts.max_rejected = 1;
  auto out = ParseRecords(*schema,
                          {{"a", "x", 1, 1},
                           {"a", "x", "bad", 1},
                           {"a", "x", "bad", 1}},
                          opts);
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParserTest, IntDimensionValidation) {
  auto schema = CubeSchema::Make("c", {{"d", 10, 5, false}},
                                 {{"m", DataType::kInt64}})
                    .value();
  ParseOptions opts;
  opts.max_rejected = 10;
  auto out = ParseRecords(*schema,
                          {{3, 1}, {-1, 1}, {10, 1}, {"str", 1}}, opts);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->accepted, 1u);
  EXPECT_EQ(out->rejected, 3u);
}

TEST(ParserTest, DoubleMetricCoercesInt) {
  auto schema = CubeSchema::Make("c", {{"d", 4, 4, false}},
                                 {{"m", DataType::kDouble}})
                    .value();
  auto out = ParseRecords(*schema, {{0, 3}, {1, 2.5}});
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->batches.size(), 1u);
  const auto& batch = out->batches.begin()->second;
  EXPECT_DOUBLE_EQ(batch.metric_doubles[0][0], 3.0);
  EXPECT_DOUBLE_EQ(batch.metric_doubles[0][1], 2.5);
}

TEST(ParserTest, StringMetricEncoded) {
  auto schema = CubeSchema::Make("c", {{"d", 4, 4, false}},
                                 {{"tag", DataType::kString}})
                    .value();
  auto out = ParseRecords(*schema, {{0, "alpha"}, {1, "beta"}, {2, "alpha"}});
  ASSERT_TRUE(out.ok());
  const auto& batch = out->batches.begin()->second;
  EXPECT_EQ(batch.metric_ints[0][0], 0);
  EXPECT_EQ(batch.metric_ints[0][1], 1);
  EXPECT_EQ(batch.metric_ints[0][2], 0);
}

TEST(ParserTest, DimOffsetsAreWithinRange) {
  auto schema = CubeSchema::Make("c", {{"d", 8, 4, false}},
                                 {{"m", DataType::kInt64}})
                    .value();
  auto out = ParseRecords(*schema, {{5, 1}});  // coord 5 = range 1, offset 1
  ASSERT_TRUE(out.ok());
  const auto& [bid, batch] = *out->batches.begin();
  EXPECT_EQ(bid, 1u);
  EXPECT_EQ(batch.dim_offsets[0][0], 1u);
}

TEST(CsvTest, ParsesTypedLine) {
  auto schema = CubeSchema::Make(
                    "c",
                    {{"region", 8, 2, true}, {"day", 31, 31, false}},
                    {{"units", DataType::kInt64},
                     {"rev", DataType::kDouble}})
                    .value();
  auto rec = ParseCsvLine(*schema, "US,12,100,9.75");
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->values[0].as_string(), "US");
  EXPECT_EQ(rec->values[1].as_int64(), 12);
  EXPECT_EQ(rec->values[2].as_int64(), 100);
  EXPECT_DOUBLE_EQ(rec->values[3].as_double(), 9.75);
}

TEST(CsvTest, RejectsWrongFieldCount) {
  auto schema = CubeSchema::Make("c", {{"d", 4, 4, false}},
                                 {{"m", DataType::kInt64}})
                    .value();
  EXPECT_FALSE(ParseCsvLine(*schema, "1,2,3").ok());
  EXPECT_FALSE(ParseCsvLine(*schema, "1").ok());
}

TEST(CsvTest, RejectsBadNumbers) {
  auto schema = CubeSchema::Make("c", {{"d", 4, 4, false}},
                                 {{"m", DataType::kInt64}})
                    .value();
  EXPECT_FALSE(ParseCsvLine(*schema, "x,1").ok());
  EXPECT_FALSE(ParseCsvLine(*schema, "1,1.5x").ok());
}

}  // namespace
}  // namespace cubrick
