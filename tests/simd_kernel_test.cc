// Differential tests for the SIMD kernel layer (DESIGN.md §4e): every
// backend this CPU supports must produce BIT-identical results to the
// scalar reference — filter masks, wrapping int64 folds, pinned-order
// double folds, bitmap word ops — across ragged sizes, sign-bit values,
// ±0.0 ties and NaN. On top of the kernel fuzz, an end-to-end pass runs
// the same queries (grouped, filtered, deleted-row, ragged-tail bricks)
// under each backend and compares QueryResults bitwise.
//
// On a scalar-only CPU the cross-backend loops degenerate to scalar vs
// scalar (vacuously green); the CI matrix legs with CUBRICK_SIMD=scalar
// and =avx2 keep both sides exercised where hardware allows.

#include "common/simd.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "common/bitmap.h"
#include "common/random.h"
#include "cubrick/database.h"

namespace cubrick {
namespace {

// Saves and restores the process-global backend so tests that flip it
// (bitmap/executor differentials) cannot leak state into other tests.
class ScopedBackend {
 public:
  explicit ScopedBackend(simd::Backend b) : saved_(simd::Active()) {
    EXPECT_TRUE(simd::SetBackend(b));
  }
  ~ScopedBackend() { simd::SetBackend(saved_); }

 private:
  simd::Backend saved_;
};

std::vector<simd::Backend> SupportedBackends() {
  std::vector<simd::Backend> out = {simd::Backend::kScalar};
  if (simd::Supported(simd::Backend::kAvx2)) {
    out.push_back(simd::Backend::kAvx2);
  }
  if (simd::Supported(simd::Backend::kNeon)) {
    out.push_back(simd::Backend::kNeon);
  }
  return out;
}

// Bitwise equality: distinguishes -0.0 from +0.0 and compares NaN
// payloads, which EXPECT_DOUBLE_EQ cannot.
uint64_t Bits(double v) {
  uint64_t u;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

TEST(SimdDispatchTest, ScalarAlwaysSupported) {
  EXPECT_TRUE(simd::Supported(simd::Backend::kScalar));
  EXPECT_EQ(simd::KernelsFor(simd::Backend::kScalar).backend,
            simd::Backend::kScalar);
  EXPECT_STREQ(simd::BackendName(simd::Backend::kScalar), "scalar");
  EXPECT_STREQ(simd::BackendName(simd::Backend::kAvx2), "avx2");
  EXPECT_STREQ(simd::BackendName(simd::Backend::kNeon), "neon");
}

TEST(SimdDispatchTest, DetectIsSupportedAndTablesAreComplete) {
  const simd::Backend best = simd::Detect();
  EXPECT_TRUE(simd::Supported(best));
  for (simd::Backend b : SupportedBackends()) {
    const simd::Kernels& k = simd::KernelsFor(b);
    EXPECT_EQ(k.backend, b);
    EXPECT_NE(k.filter_eq, nullptr);
    EXPECT_NE(k.filter_range, nullptr);
    EXPECT_NE(k.filter_in, nullptr);
    EXPECT_NE(k.fold_int64, nullptr);
    EXPECT_NE(k.fold_double, nullptr);
    EXPECT_NE(k.and_words, nullptr);
    EXPECT_NE(k.or_words, nullptr);
    EXPECT_NE(k.andnot_words, nullptr);
    EXPECT_NE(k.count_bits, nullptr);
  }
}

TEST(SimdDispatchTest, SetBackendRejectsUnsupported) {
  const simd::Backend before = simd::Active();
  for (simd::Backend b :
       {simd::Backend::kScalar, simd::Backend::kAvx2, simd::Backend::kNeon}) {
    if (simd::Supported(b)) continue;
    EXPECT_FALSE(simd::SetBackend(b));
    EXPECT_EQ(simd::Active(), before) << "failed SetBackend must not switch";
  }
}

TEST(SimdDispatchTest, ConfigureFromStringNeverCrashes) {
  const simd::Backend before = simd::Active();
  simd::ConfigureFromString(nullptr);   // no-op
  simd::ConfigureFromString("");        // no-op
  EXPECT_EQ(simd::Active(), before);
  simd::ConfigureFromString("scalar");
  EXPECT_EQ(simd::Active(), simd::Backend::kScalar);
  simd::ConfigureFromString("bogus-backend");  // warns, keeps current
  EXPECT_EQ(simd::Active(), simd::Backend::kScalar);
  simd::ConfigureFromString("auto");
  EXPECT_EQ(simd::Active(), simd::Detect());
  simd::SetBackend(before);
}

// ---------------------------------------------------------------------------
// Filter kernels: eq / range / in over 64-coordinate buffers
// ---------------------------------------------------------------------------

TEST(SimdKernelTest, FilterKernelsMatchScalarFuzz) {
  const auto backends = SupportedBackends();
  const simd::Kernels& ref = simd::KernelsFor(simd::Backend::kScalar);
  Random rng(0xf117e4);
  for (int iter = 0; iter < 512; ++iter) {
    uint64_t coords[64];
    // Mix of tiny cardinalities (realistic dims), wide values, and values
    // with the sign bit set (exercises the AVX2 signed-compare bias).
    const uint64_t card = 1ULL << (1 + rng.Uniform(62));
    for (auto& c : coords) {
      c = rng.Uniform(card);
      if (rng.Uniform(8) == 0) c |= 0x8000000000000000ULL;
    }
    const uint64_t eq_val = coords[rng.Uniform(64)];
    uint64_t lo = coords[rng.Uniform(64)];
    uint64_t hi = coords[rng.Uniform(64)];
    if (iter % 7 == 0) std::swap(lo, hi);  // keep some empty ranges
    uint64_t in_vals[8];
    const size_t num_in = 1 + rng.Uniform(8);
    for (size_t i = 0; i < num_in; ++i) in_vals[i] = coords[rng.Uniform(64)];

    const uint64_t ref_eq = ref.filter_eq(coords, eq_val);
    const uint64_t ref_rng = ref.filter_range(coords, lo, hi);
    const uint64_t ref_in = ref.filter_in(coords, in_vals, num_in);
    ASSERT_NE(ref_eq, 0u);  // eq_val was drawn from coords
    for (simd::Backend b : backends) {
      const simd::Kernels& k = simd::KernelsFor(b);
      EXPECT_EQ(k.filter_eq(coords, eq_val), ref_eq)
          << simd::BackendName(b) << " iter " << iter;
      EXPECT_EQ(k.filter_range(coords, lo, hi), ref_rng)
          << simd::BackendName(b) << " iter " << iter;
      EXPECT_EQ(k.filter_in(coords, in_vals, num_in), ref_in)
          << simd::BackendName(b) << " iter " << iter;
    }
  }
}

TEST(SimdKernelTest, FilterRangeUnsignedBoundaries) {
  uint64_t coords[64];
  for (size_t i = 0; i < 64; ++i) coords[i] = i;
  coords[0] = 0;
  coords[1] = 0x7fffffffffffffffULL;  // INT64_MAX
  coords[2] = 0x8000000000000000ULL;  // INT64_MAX + 1 (sign flip)
  coords[3] = ~0ULL;                  // UINT64_MAX
  for (simd::Backend b : SupportedBackends()) {
    const simd::Kernels& k = simd::KernelsFor(b);
    // Full unsigned range: everything matches.
    EXPECT_EQ(k.filter_range(coords, 0, ~0ULL), ~0ULL)
        << simd::BackendName(b);
    // A range straddling the sign bit must use unsigned order.
    const uint64_t m =
        k.filter_range(coords, 0x7fffffffffffffffULL, 0x8000000000000000ULL);
    EXPECT_EQ(m, (1ULL << 1) | (1ULL << 2)) << simd::BackendName(b);
    // Empty range (lo > hi) matches nothing.
    EXPECT_EQ(k.filter_range(coords, 5, 4), 0ULL) << simd::BackendName(b);
  }
}

// ---------------------------------------------------------------------------
// Fold kernels: wrapping int64 sums, pinned-order double sums
// ---------------------------------------------------------------------------

TEST(SimdKernelTest, FoldInt64MatchesScalarFuzzAllLengths) {
  const auto backends = SupportedBackends();
  const simd::Kernels& ref = simd::KernelsFor(simd::Backend::kScalar);
  Random rng(0x10164);
  for (int iter = 0; iter < 64; ++iter) {
    int64_t v[64];
    for (auto& x : v) {
      switch (rng.Uniform(4)) {
        case 0:  // small realistic metric values
          x = rng.UniformRange(-1000, 1000);
          break;
        case 1:  // near overflow: forces the wrapping-sum contract
          x = std::numeric_limits<int64_t>::max() -
              static_cast<int64_t>(rng.Uniform(3));
          break;
        case 2:
          x = std::numeric_limits<int64_t>::min() +
              static_cast<int64_t>(rng.Uniform(3));
          break;
        default:  // arbitrary bits
          x = static_cast<int64_t>(rng.Next());
          break;
      }
    }
    for (size_t n = 1; n <= 64; ++n) {
      uint64_t rs;
      int64_t rmin, rmax;
      ref.fold_int64(v, n, &rs, &rmin, &rmax);
      for (simd::Backend b : backends) {
        uint64_t s;
        int64_t mn, mx;
        simd::KernelsFor(b).fold_int64(v, n, &s, &mn, &mx);
        ASSERT_EQ(s, rs) << simd::BackendName(b) << " n=" << n;
        ASSERT_EQ(mn, rmin) << simd::BackendName(b) << " n=" << n;
        ASSERT_EQ(mx, rmax) << simd::BackendName(b) << " n=" << n;
      }
    }
  }
}

TEST(SimdKernelTest, FoldDoubleMatchesScalarBitwiseAllLengths) {
  const auto backends = SupportedBackends();
  const simd::Kernels& ref = simd::KernelsFor(simd::Backend::kScalar);
  // Value pool chosen to make any reassociation visible: mixed magnitudes
  // lose different low bits depending on add order.
  Random rng(0xd0b1e5);
  for (int iter = 0; iter < 64; ++iter) {
    double v[64];
    for (auto& x : v) {
      switch (rng.Uniform(6)) {
        case 0:
          x = static_cast<double>(rng.UniformRange(-1000, 1000)) / 3.0;
          break;
        case 1:
          x = 1e16 + static_cast<double>(rng.Uniform(1000));
          break;
        case 2:
          x = -1e-9 * static_cast<double>(rng.Uniform(1000));
          break;
        case 3:
          x = (rng.Uniform(2) != 0) ? 0.0 : -0.0;
          break;
        case 4:
          x = static_cast<double>(static_cast<int64_t>(rng.Next()));
          break;
        default:
          x = static_cast<double>(rng.Uniform(100));
          break;
      }
    }
    for (size_t n = 1; n <= 64; ++n) {
      double rs, rmin, rmax;
      ref.fold_double(v, n, &rs, &rmin, &rmax);
      for (simd::Backend b : backends) {
        double s, mn, mx;
        simd::KernelsFor(b).fold_double(v, n, &s, &mn, &mx);
        ASSERT_EQ(Bits(s), Bits(rs)) << simd::BackendName(b) << " n=" << n;
        ASSERT_EQ(Bits(mn), Bits(rmin)) << simd::BackendName(b) << " n=" << n;
        ASSERT_EQ(Bits(mx), Bits(rmax)) << simd::BackendName(b) << " n=" << n;
      }
    }
  }
}

TEST(SimdKernelTest, FoldDoubleNanAndSignedZeroContract) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  // NaN in every lane position, including the sequential tail (n=5..7).
  for (size_t nan_at : {0u, 1u, 3u, 4u, 6u}) {
    double v[7] = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0};
    v[nan_at] = nan;
    for (size_t n = nan_at + 1; n <= 7; ++n) {
      for (simd::Backend b : SupportedBackends()) {
        double s, mn, mx;
        simd::KernelsFor(b).fold_double(v, n, &s, &mn, &mx);
        // MINPD/MAXPD(v, acc) semantics: a NaN *value* never replaces the
        // accumulator, so min/max stay finite; the sum is NaN as IEEE adds.
        EXPECT_TRUE(std::isnan(s)) << simd::BackendName(b);
        EXPECT_FALSE(std::isnan(mn)) << simd::BackendName(b) << " n=" << n;
        EXPECT_FALSE(std::isnan(mx)) << simd::BackendName(b) << " n=" << n;
      }
    }
  }
  // -0.0 / +0.0 ties must resolve identically (compare-select keeps the
  // accumulator on ties, because -0.0 < 0.0 is false).
  const double zeros[8] = {0.0, -0.0, -0.0, 0.0, -0.0, 0.0, 0.0, -0.0};
  const simd::Kernels& ref = simd::KernelsFor(simd::Backend::kScalar);
  for (size_t n = 1; n <= 8; ++n) {
    double rs, rmin, rmax;
    ref.fold_double(zeros, n, &rs, &rmin, &rmax);
    for (simd::Backend b : SupportedBackends()) {
      double s, mn, mx;
      simd::KernelsFor(b).fold_double(zeros, n, &s, &mn, &mx);
      EXPECT_EQ(Bits(s), Bits(rs)) << simd::BackendName(b) << " n=" << n;
      EXPECT_EQ(Bits(mn), Bits(rmin)) << simd::BackendName(b) << " n=" << n;
      EXPECT_EQ(Bits(mx), Bits(rmax)) << simd::BackendName(b) << " n=" << n;
    }
  }
}

// ---------------------------------------------------------------------------
// Bitmap word ops: And/Or/AndNot/CountSet across ragged sizes
// ---------------------------------------------------------------------------

TEST(SimdBitmapTest, WordOpsMatchScalarAcrossRaggedSizes) {
  Random rng(0xb17a5);
  const simd::Kernels& ref = simd::KernelsFor(simd::Backend::kScalar);
  const auto backends = SupportedBackends();
  // ~1k bitmaps: every size in 1..257 (covers 1..5 words and every tail
  // remainder), 4 random fills each.
  for (size_t size = 1; size <= 257; ++size) {
    for (int rep = 0; rep < 4; ++rep) {
      const size_t nwords = (size + 63) / 64;
      std::vector<uint64_t> a(nwords), bwords(nwords);
      for (size_t w = 0; w < nwords; ++w) {
        a[w] = rng.Next();
        bwords[w] = rng.Next();
      }
      // Mask the ragged tail the way Bitmap::SetWord would.
      if (size % 64 != 0) {
        const uint64_t tail_mask = (1ULL << (size % 64)) - 1;
        a.back() &= tail_mask;
        bwords.back() &= tail_mask;
      }
      std::vector<uint64_t> ref_and = a, ref_or = a, ref_andnot = a;
      ref.and_words(ref_and.data(), bwords.data(), nwords);
      ref.or_words(ref_or.data(), bwords.data(), nwords);
      ref.andnot_words(ref_andnot.data(), bwords.data(), nwords);
      const size_t ref_count = ref.count_bits(a.data(), nwords);
      for (simd::Backend bk : backends) {
        const simd::Kernels& k = simd::KernelsFor(bk);
        std::vector<uint64_t> t_and = a, t_or = a, t_andnot = a;
        k.and_words(t_and.data(), bwords.data(), nwords);
        k.or_words(t_or.data(), bwords.data(), nwords);
        k.andnot_words(t_andnot.data(), bwords.data(), nwords);
        ASSERT_EQ(t_and, ref_and) << simd::BackendName(bk) << " size " << size;
        ASSERT_EQ(t_or, ref_or) << simd::BackendName(bk) << " size " << size;
        ASSERT_EQ(t_andnot, ref_andnot)
            << simd::BackendName(bk) << " size " << size;
        ASSERT_EQ(k.count_bits(a.data(), nwords), ref_count)
            << simd::BackendName(bk) << " size " << size;
      }
    }
  }
}

TEST(SimdBitmapTest, BitmapClassOpsIdenticalUnderEveryBackend) {
  Random rng(0xb17b17);
  for (size_t size : {1u, 63u, 64u, 65u, 127u, 128u, 200u, 257u}) {
    Bitmap a(size), b(size);
    for (size_t i = 0; i < size; ++i) {
      if (rng.Uniform(2) != 0) a.Set(i);
      if (rng.Uniform(3) != 0) b.Set(i);
    }
    Bitmap and_ref = a, or_ref = a, andnot_ref = a;
    size_t count_ref = 0;
    {
      ScopedBackend scoped(simd::Backend::kScalar);
      and_ref.And(b);
      or_ref.Or(b);
      andnot_ref.AndNot(b);
      count_ref = a.CountSet();
    }
    for (simd::Backend bk : SupportedBackends()) {
      ScopedBackend scoped(bk);
      Bitmap and_t = a, or_t = a, andnot_t = a;
      and_t.And(b);
      or_t.Or(b);
      andnot_t.AndNot(b);
      EXPECT_TRUE(and_t == and_ref) << simd::BackendName(bk);
      EXPECT_TRUE(or_t == or_ref) << simd::BackendName(bk);
      EXPECT_TRUE(andnot_t == andnot_ref) << simd::BackendName(bk);
      EXPECT_EQ(a.CountSet(), count_ref) << simd::BackendName(bk);
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end: whole queries bit-identical across backends
// ---------------------------------------------------------------------------

constexpr char kCubeDdl[] =
    "CREATE CUBE simd_cube (region int CARDINALITY 16 RANGE 4, "
    "kind string CARDINALITY 8 RANGE 8, n int, weight double)";

// Loads enough rows for several dense 64-row words plus a ragged tail,
// then deletes one partition so visibility masks have holes.
void FillCube(Database* db) {
  ASSERT_TRUE(db->ExecuteDdl(kCubeDdl).ok());
  Random rng(0x51d0);
  std::vector<Record> records;
  for (int i = 0; i < 3000; ++i) {
    Record r;
    r.values.emplace_back(static_cast<int64_t>(rng.Uniform(16)));
    r.values.emplace_back("k" + std::to_string(rng.Uniform(8)));
    r.values.emplace_back(static_cast<int64_t>(rng.UniformRange(-50, 50)));
    r.values.emplace_back(
        static_cast<double>(rng.UniformRange(-1000, 1000)) / 7.0);
    records.push_back(std::move(r));
  }
  ASSERT_TRUE(db->Load("simd_cube", records).ok());
  // Partition-granular predicate: region RANGE is 4, so [4, 7] is exactly
  // one partition per brick.
  auto del = db->RangeFilter("simd_cube", "region", 4, 7);
  ASSERT_TRUE(del.ok());
  auto deleted = db->DeletePartitions("simd_cube", {*del});
  ASSERT_TRUE(deleted.ok()) << deleted.ToString();
}

std::vector<Query> DifferentialQueries(Database* db) {
  std::vector<Query> queries;
  Query all;
  all.aggs = {{AggSpec::Fn::kSum, 0},   {AggSpec::Fn::kCount, 0},
              {AggSpec::Fn::kMin, 0},   {AggSpec::Fn::kMax, 0},
              {AggSpec::Fn::kSum, 1},   {AggSpec::Fn::kMin, 1},
              {AggSpec::Fn::kMax, 1}};
  queries.push_back(all);

  Query filtered = all;
  auto eq = db->EqFilter("simd_cube", "kind", "k2");
  EXPECT_TRUE(eq.ok());
  filtered.filters = {*eq};
  queries.push_back(filtered);

  Query ranged = all;
  auto rf = db->RangeFilter("simd_cube", "region", 1, 9);
  EXPECT_TRUE(rf.ok());
  ranged.filters = {*rf};
  queries.push_back(ranged);

  Query in_list = all;
  auto inf = db->InFilter("simd_cube", "kind", {"k1", "k4", "k7"});
  EXPECT_TRUE(inf.ok());
  in_list.filters = {*inf};
  queries.push_back(in_list);

  Query grouped = all;
  grouped.group_by = {0, 1};
  queries.push_back(grouped);

  Query grouped_filtered = grouped;
  grouped_filtered.filters = {*eq};
  queries.push_back(grouped_filtered);
  return queries;
}

void ExpectBitIdentical(const QueryResult& ref, const QueryResult& got,
                        const char* backend, size_t qi) {
  ASSERT_EQ(ref.num_groups(), got.num_groups()) << backend << " q" << qi;
  ASSERT_EQ(ref.num_aggs(), got.num_aggs()) << backend << " q" << qi;
  for (const auto& [key, states] : ref.groups()) {
    auto it = got.groups().find(key);
    ASSERT_NE(it, got.groups().end()) << backend << " q" << qi;
    ASSERT_EQ(states.size(), it->second.size());
    for (size_t a = 0; a < states.size(); ++a) {
      EXPECT_EQ(Bits(states[a].sum), Bits(it->second[a].sum))
          << backend << " q" << qi << " agg " << a;
      EXPECT_EQ(states[a].count, it->second[a].count)
          << backend << " q" << qi << " agg " << a;
      EXPECT_EQ(Bits(states[a].min), Bits(it->second[a].min))
          << backend << " q" << qi << " agg " << a;
      EXPECT_EQ(Bits(states[a].max), Bits(it->second[a].max))
          << backend << " q" << qi << " agg " << a;
    }
  }
}

TEST(SimdExecutorTest, QueryResultsBitIdenticalAcrossBackends) {
  Database db;
  FillCube(&db);
  const std::vector<Query> queries = DifferentialQueries(&db);
  std::vector<QueryResult> refs;
  {
    ScopedBackend scoped(simd::Backend::kScalar);
    for (const Query& q : queries) {
      auto r = db.Query("simd_cube", q);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      refs.push_back(std::move(r).value());
    }
  }
  EXPECT_GT(refs[0].Single(1, AggSpec::Fn::kCount), 2000.0);  // deletes applied
  for (simd::Backend b : SupportedBackends()) {
    ScopedBackend scoped(b);
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      auto r = db.Query("simd_cube", queries[qi]);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      ExpectBitIdentical(refs[qi], std::move(r).value(), simd::BackendName(b),
                         qi);
    }
  }
}

// DatabaseOptions::simd routes through ConfigureFromString at construction.
TEST(SimdExecutorTest, DatabaseOptionsSimdOverride) {
  const simd::Backend before = simd::Active();
  {
    DatabaseOptions options;
    options.simd = "scalar";
    Database db(options);
    EXPECT_EQ(simd::Active(), simd::Backend::kScalar);
  }
  simd::SetBackend(before);
}

}  // namespace
}  // namespace cubrick
