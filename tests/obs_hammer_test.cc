// Multi-threaded hammer over the observability layer: concurrent writers on
// shared instruments plus concurrent snapshot/exposition readers. Run under
// TSan by the sanitizer CI jobs; the assertions pin down the consistency
// guarantee from docs/OBSERVABILITY.md: every snapshot of a histogram
// satisfies count == sum(buckets), counters read monotonically, and final
// totals are exact.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace cubrick::obs {
namespace {

TEST(ObsHammerTest, ConcurrentWritersAndSnapshotters) {
  SetEnabled(true);
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* counter = reg.GetCounter("hammer.ops_total");
  Gauge* gauge = reg.GetGauge("hammer.depth");
  Histogram* hist = reg.GetHistogram("hammer.latency_us");
  counter->ResetForTest();
  gauge->ResetForTest();
  hist->ResetForTest();
  GlobalSpanRing().ResetForTest();

  constexpr int kWriters = 4;
  constexpr uint64_t kOpsPerWriter = 20'000;
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      // Each writer also registers its own instrument mid-run, exercising
      // the registration mutex against concurrent snapshots.
      Counter* own =
          reg.GetCounter("hammer.writer_" + std::to_string(w) + "_total");
      for (uint64_t i = 0; i < kOpsPerWriter; ++i) {
        counter->Add();
        own->Add();
        gauge->Set(static_cast<int64_t>(i));
        hist->Record(i % 5000);
        GlobalSpanRing().Record("hammer.span", static_cast<int64_t>(i), 1);
      }
    });
  }

  std::thread snapshotter([&] {
    uint64_t last_count = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const MetricsSnapshot snap = reg.Snapshot();
      // Counters never move backwards between snapshots.
      const auto it = snap.counters.find("hammer.ops_total");
      if (it != snap.counters.end()) {
        EXPECT_GE(it->second, last_count);
        last_count = it->second;
      }
      // Histogram snapshots are internally consistent mid-write.
      const auto hit = snap.histograms.find("hammer.latency_us");
      if (hit != snap.histograms.end()) {
        uint64_t bucket_sum = 0;
        for (uint64_t b : hit->second.buckets) bucket_sum += b;
        EXPECT_EQ(hit->second.count, bucket_sum);
      }
      // Both expositions must stay well-formed under concurrent writes.
      EXPECT_NE(ExportPrometheus(snap).find("cubrick_hammer_ops_total"),
                std::string::npos);
      EXPECT_NE(ExportJson(snap).find("\"hammer.ops_total\""),
                std::string::npos);
    }
  });

  std::thread span_reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const SpanRecord& rec : GlobalSpanRing().Collect()) {
        // A torn slot would surface as a foreign name or duration.
        EXPECT_STREQ(rec.name, "hammer.span");
        EXPECT_EQ(rec.dur_us, 1);
      }
    }
  });

  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  snapshotter.join();
  span_reader.join();

  const uint64_t expected = kWriters * kOpsPerWriter;
  EXPECT_EQ(counter->Value(), expected);
  EXPECT_EQ(hist->Read().count, expected);
  for (int w = 0; w < kWriters; ++w) {
    EXPECT_EQ(
        reg.GetCounter("hammer.writer_" + std::to_string(w) + "_total")
            ->Value(),
        kOpsPerWriter);
  }
  EXPECT_EQ(GlobalSpanRing().TotalRecorded(), expected);
  EXPECT_LE(GlobalSpanRing().Collect().size(), SpanRing::kCapacity);
}

TEST(ObsHammerTest, ConcurrentRegistrationReturnsOneInstrumentPerName) {
  SetEnabled(true);
  MetricsRegistry& reg = MetricsRegistry::Global();
  constexpr int kThreads = 8;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Counter* c = reg.GetCounter("hammer.registration_race");
      c->Add();
      seen[static_cast<size_t>(t)] = c;
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[static_cast<size_t>(t)], seen[0]);
  }
  EXPECT_GE(reg.GetCounter("hammer.registration_race")->Value(),
            static_cast<uint64_t>(kThreads));
}

}  // namespace
}  // namespace cubrick::obs
