#!/usr/bin/env python3
"""Waiver-debt gate: fail CI when lint waivers exceed the agreed budget.

Usage: check_waiver_budget.py WAIVER_REPORT_JSON [BUDGET_FILE]

WAIVER_REPORT_JSON is produced by `aosi_lint --waiver-report` (via
scripts/lint.sh). BUDGET_FILE (default: LINT_WAIVER_BUDGET at the repo
root) holds one integer on the first non-comment line.

The gate is bidirectional on purpose:
  - count > budget  -> FAIL: a new waiver needs an explicit budget bump in
    the same PR, so waiver growth is reviewed like any other debt.
  - count < budget  -> FAIL: a retired waiver must lower the budget, so the
    headroom cannot be silently consumed by the next waiver.
"""

import json
import os
import sys


def read_budget(path: str) -> int:
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            return int(line)
    raise ValueError(f"{path}: no budget line found")


def main(argv: list) -> int:
    if len(argv) < 2 or len(argv) > 3:
        print(__doc__, file=sys.stderr)
        return 2
    report_path = argv[1]
    budget_path = (
        argv[2]
        if len(argv) == 3
        else os.path.join(os.path.dirname(__file__), "..", "LINT_WAIVER_BUDGET")
    )

    with open(report_path, encoding="utf-8") as f:
        report = json.load(f)
    count = report["waiver_count"]
    sites = report.get("sites", [])
    budget = read_budget(budget_path)

    print(f"waiver debt: {count} waiver(s), budget {budget}")
    for site in sites:
        rules = ", ".join(site.get("rules", []))
        print(f"  {site['file']}:{site['line']}  [{rules}]")

    if count > budget:
        print(
            f"FAIL: waiver count {count} exceeds budget {budget}. Fix the "
            "finding instead, or justify the waiver and bump "
            "LINT_WAIVER_BUDGET in this PR (docs/STATIC_ANALYSIS.md).",
            file=sys.stderr,
        )
        return 1
    if count < budget:
        print(
            f"FAIL: waiver count {count} is below budget {budget}. A waiver "
            "was retired — lower LINT_WAIVER_BUDGET to match so the headroom "
            "is not silently reused.",
            file=sys.stderr,
        )
        return 1
    print("waiver budget: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
