#!/usr/bin/env bash
# One-shot reproduction: build, run the full test suite, regenerate every
# paper table/figure, and smoke-run the examples. Outputs land in
# test_output.txt and bench_output.txt at the repo root.
#
# Usage:
#   ./scripts/reproduce.sh             # default (CI-sized) experiment scales
#   CUBRICK_BENCH_SCALE=10 ./scripts/reproduce.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja -DCMAKE_BUILD_TYPE=Release
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

{
  for b in build/bench/*; do
    echo "===== $b ====="
    "$b"
    echo
  done
} 2>&1 | tee bench_output.txt

for e in build/examples/example_*; do
  case "$e" in
    *cubrick_shell) printf 'STATS\nQUIT\n' | "$e" >/dev/null ;;
    *) "$e" >/dev/null ;;
  esac
  echo "example OK: $e"
done

echo
echo "Reproduction complete. See test_output.txt / bench_output.txt and"
echo "EXPERIMENTS.md for the paper-vs-measured comparison."
