#!/usr/bin/env python3
"""Validate a BENCH_*.json baseline emitted by bench/ drivers.

Usage: check_bench_baseline.py BENCH_baseline.json [more.json ...]

Checks (stdlib only, no third-party deps):
  * the file is well-formed JSON with the EmitBenchJson shape
    ({"bench", "scale", "headline", "metrics"}, plus the optional "machine"
    capability stamp — see bench/bench_common.h and docs/OBSERVABILITY.md);
  * the embedded registry snapshot has the "counters"/"gauges"/"histograms"
    sections;
  * every histogram satisfies count == sum(bucket counts) — the exporter's
    consistency guarantee;
  * for the canonical baseline (bench == "baseline", from fig9), the AOSI
    health metrics the paper's analysis depends on are present;
  * for the morsel-parallel sweep (bench == "fig9_parallel"), the 4-thread
    speedup clears its floor — asserted only when the machine stamp shows
    an uninstrumented build on a box with >= 4 cores (a 1-core container
    reports ~1.0x by construction, and sanitizers distort the ratio);
  * for the online-checker sweep (bench == "fig9_online_check"), the
    checker-on overhead stays <= 5% and the checker actually sampled;
  * for the purge-pause sweep (bench == "fig9_purge_pause"), the phased
    concurrent purge's pause p99 is no worse than the quiescent baseline
    measured with scans live — asserted under the same machine-capability
    gate as the scaling floor (>= 2 cores, uninstrumented build);
  * for the SIMD kernel sweep (bench == "fig9_simd"), the SIMD fold is
    >= 1.3x faster than the scalar backend — asserted only when the stamp
    shows >= 2 cores, no sanitizer, AND a non-scalar simd_backend (a runner
    without AVX2/NEON resolves to scalar and reports ~1.0x by construction;
    it skips with a printed reason, never silently passes);
  * for the ingest pipeline sweep (bench == "fig5_ingest", from fig5), the
    morsel-parallel parse instruments (ingest.parse_us, dictionary
    snapshot hit/miss counters, group-append coalescing counter) are
    present, dictionary snapshot lookups actually hit, and the 4-way parse
    speedup clears its floor — asserted under the same machine-capability
    gate as fig9_parallel (>= 4 cores, uninstrumented build).

Exit codes: 0 ok, 1 validation failure, 2 usage/IO error.
"""

import json
import sys

REQUIRED_BASELINE_METRICS = [
    ("gauges", "aosi.ec_lce_lag"),
    ("gauges", "aosi.lce_lse_lag"),
    ("gauges", "aosi.pending_txs"),
    ("counters", "aosi.purge.records_reclaimed"),
]

# The cache sweep (bench == "fig9_cache") must prove the cache actually ran:
# hit/miss counters and the word-wise kernel instruments have to be present.
REQUIRED_CACHE_METRICS = [
    ("counters", "query.vis_cache_hits"),
    ("counters", "query.vis_cache_misses"),
    ("counters", "query.kernel_words_scanned"),
    ("histograms", "query.kernel_dense_words_permille"),
]

# The online-checker sweep (bench == "fig9_online_check") must prove the
# checker was live during the checker-on half: sampled transactions,
# observations and validated records all have to be present and non-zero
# (asserted below, not just listed here).
REQUIRED_ONLINE_METRICS = [
    ("counters", "check.online.sampled_txns"),
    ("counters", "check.online.observations"),
    ("counters", "check.online.validated"),
    ("counters", "check.online.violations"),
]

# Multi-thread scaling floor for fig9_parallel, asserted only on capable
# machines (see skip logic below).
MIN_SPEEDUP_4T = 1.1
MIN_SCALING_CORES = 4

# The purge-pause sweep (bench == "fig9_purge_pause") must prove purge
# actually ran and was timed in both modes.
REQUIRED_PURGE_METRICS = [
    ("histograms", "aosi.purge.pause_us"),
    ("histograms", "aosi.purge.round_us"),
    ("counters", "aosi.purge.rounds_total"),
]

# Pause-flattening gate: the concurrent pipeline's shard-occupancy slices
# must not be longer than the quiescent full-round pause. Needs a second
# core for the scan thread to actually contend, and sanitizer builds
# distort the ratio, so the capability gate mirrors fig9_parallel's.
MIN_PURGE_CORES = 2

# Ceiling for the online checker's query-latency overhead (ISSUE: the
# checker must ride the epoch metadata "near-free").
MAX_ONLINE_OVERHEAD_PCT = 5.0

# The SIMD sweep (bench == "fig9_simd") must prove the vector kernels
# actually ran: the dispatch counters have to be present, and
# query.kernel_simd_words must be non-zero whenever the stamp says a
# non-scalar backend was active.
REQUIRED_SIMD_METRICS = [
    ("counters", "query.kernel_simd_words"),
    ("counters", "query.kernel_simd_fallback"),
    ("counters", "query.kernel_words_dense"),
]

# SIMD speedup floor for fig9_simd, asserted only on capable machines
# (>= MIN_SIMD_CORES cores, uninstrumented, non-scalar backend resolved).
MIN_SIMD_SPEEDUP = 1.3
MIN_SIMD_CORES = 2

# The ingest pipeline sweep (bench == "fig5_ingest") must prove the
# morsel-parallel path actually ran end to end: the parse/flush timers, the
# two-phase dictionary counters and the shard group-append coalescing
# counter all have to be present (the sweep's string-heavy workload makes
# every one of them fire).
REQUIRED_INGEST_METRICS = [
    ("histograms", "ingest.parse_us"),
    ("histograms", "ingest.flush_us"),
    ("counters", "ingest.records_accepted"),
    ("counters", "ingest.dict_snapshot_hits"),
    ("counters", "ingest.dict_batch_misses"),
    ("counters", "ingest.group_appends"),
]

# 4-way parse speedup floor for fig5_ingest, asserted only on capable
# machines (same gate as fig9_parallel: cores to fan out onto and no
# sanitizer slowing one arm more than the other).
MIN_INGEST_SPEEDUP = 1.8
MIN_INGEST_CORES = 4


def fail(path, msg):
    print(f"check_bench_baseline: {path}: {msg}", file=sys.stderr)
    return 1


def check_file(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_bench_baseline: {path}: {e}", file=sys.stderr)
        return 2

    for key in ("bench", "scale", "headline", "metrics"):
        if key not in doc:
            return fail(path, f'missing top-level key "{key}"')
    if not isinstance(doc["headline"], dict) or not doc["headline"]:
        return fail(path, "headline must be a non-empty object")
    for k, v in doc["headline"].items():
        if not isinstance(v, (int, float)):
            return fail(path, f'headline "{k}" is not a number')

    metrics = doc["metrics"]
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(metrics.get(section), dict):
            return fail(path, f'metrics missing "{section}" section')

    # Machine-capability stamp (bench_common.h): optional for backward
    # compatibility with pre-stamp baselines, validated when present.
    machine = doc.get("machine")
    if machine is not None:
        if not isinstance(machine, dict):
            return fail(path, '"machine" must be an object')
        if not isinstance(machine.get("cores"), int) or machine["cores"] < 0:
            return fail(path, 'machine "cores" must be a non-negative integer')
        if machine.get("sanitizer") not in ("none", "thread", "address"):
            return fail(
                path, 'machine "sanitizer" must be "none", "thread" or "address"'
            )
        # simd_backend is optional (pre-SIMD baselines predate it) but must
        # name a real backend when present.
        if "simd_backend" in machine and machine["simd_backend"] not in (
            "scalar",
            "avx2",
            "neon",
        ):
            return fail(
                path, 'machine "simd_backend" must be "scalar", "avx2" or "neon"'
            )

    for name, hist in metrics["histograms"].items():
        bucket_sum = sum(count for _, count in hist.get("buckets", []))
        if hist.get("count") != bucket_sum:
            return fail(
                path,
                f'histogram "{name}": count {hist.get("count")} != '
                f"sum(buckets) {bucket_sum}",
            )

    if doc["bench"] == "baseline":
        for section, name in REQUIRED_BASELINE_METRICS:
            if name not in metrics[section]:
                return fail(path, f'required metric "{name}" missing from {section}')

    if doc["bench"] == "fig9_cache":
        for section, name in REQUIRED_CACHE_METRICS:
            if name not in metrics[section]:
                return fail(path, f'required metric "{name}" missing from {section}')
        hits = metrics["counters"].get("query.vis_cache_hits", 0)
        if hits <= 0:
            return fail(path, "cache sweep recorded zero query.vis_cache_hits")

    if doc["bench"] == "fig9_parallel":
        speedup = doc["headline"].get("speedup_4t")
        if speedup is None:
            return fail(path, 'fig9_parallel headline missing "speedup_4t"')
        # Scaling assertions need the cores to scale onto and an
        # uninstrumented build; otherwise the number is measured and
        # recorded but not judged. Without a machine stamp we cannot tell,
        # so we also skip (old baselines predate the stamp).
        capable = (
            machine is not None
            and machine["cores"] >= MIN_SCALING_CORES
            and machine["sanitizer"] == "none"
        )
        if capable:
            if speedup < MIN_SPEEDUP_4T:
                return fail(
                    path,
                    f"4-thread speedup {speedup:.2f}x below the "
                    f"{MIN_SPEEDUP_4T}x floor on a "
                    f'{machine["cores"]}-core machine',
                )
        else:
            why = (
                "no machine stamp"
                if machine is None
                else f'{machine["cores"]} cores, sanitizer "{machine["sanitizer"]}"'
            )
            print(f"{path}: scaling assertion skipped ({why})")

    if doc["bench"] == "fig9_online_check":
        for section, name in REQUIRED_ONLINE_METRICS:
            if name not in metrics[section]:
                return fail(path, f'required metric "{name}" missing from {section}')
        for name in (
            "check.online.sampled_txns",
            "check.online.observations",
            "check.online.validated",
        ):
            if metrics["counters"].get(name, 0) <= 0:
                return fail(path, f'online sweep recorded zero "{name}"')
        if metrics["counters"].get("check.online.violations", 0) > 0:
            return fail(path, "online checker reported violations during the sweep")
        overhead = doc["headline"].get("overhead_pct")
        if overhead is None:
            return fail(path, 'fig9_online_check headline missing "overhead_pct"')
        if overhead > MAX_ONLINE_OVERHEAD_PCT:
            return fail(
                path,
                f"online-checker overhead {overhead:.2f}% exceeds the "
                f"{MAX_ONLINE_OVERHEAD_PCT}% ceiling",
            )

    if doc["bench"] == "fig9_purge_pause":
        for section, name in REQUIRED_PURGE_METRICS:
            if name not in metrics[section]:
                return fail(path, f'required metric "{name}" missing from {section}')
        if metrics["counters"].get("aosi.purge.rounds_total", 0) <= 0:
            return fail(path, "purge sweep recorded zero aosi.purge.rounds_total")
        quiescent = doc["headline"].get("quiescent_pause_p99_us")
        concurrent = doc["headline"].get("concurrent_pause_p99_us")
        if quiescent is None or concurrent is None:
            return fail(
                path,
                "fig9_purge_pause headline missing "
                '"quiescent_pause_p99_us"/"concurrent_pause_p99_us"',
            )
        capable = (
            machine is not None
            and machine["cores"] >= MIN_PURGE_CORES
            and machine["sanitizer"] == "none"
        )
        if capable:
            if concurrent > quiescent:
                return fail(
                    path,
                    f"concurrent purge pause p99 {concurrent:.0f}us exceeds "
                    f"the quiescent baseline {quiescent:.0f}us — the phased "
                    "pipeline is not flattening the pause",
                )
        else:
            why = (
                "no machine stamp"
                if machine is None
                else f'{machine["cores"]} cores, sanitizer "{machine["sanitizer"]}"'
            )
            print(f"{path}: pause-flattening assertion skipped ({why})")

    if doc["bench"] == "fig9_simd":
        for section, name in REQUIRED_SIMD_METRICS:
            if name not in metrics[section]:
                return fail(path, f'required metric "{name}" missing from {section}')
        for key in ("scalar_p50_us", "simd_p50_us", "simd_speedup"):
            if key not in doc["headline"]:
                return fail(path, f'fig9_simd headline missing "{key}"')
        backend = machine.get("simd_backend") if machine is not None else None
        if backend is not None and backend != "scalar":
            if metrics["counters"].get("query.kernel_simd_words", 0) <= 0:
                return fail(
                    path,
                    f'simd_backend "{backend}" active but '
                    "query.kernel_simd_words is zero — the vector kernels "
                    "never ran",
                )
        capable = (
            machine is not None
            and machine["cores"] >= MIN_SIMD_CORES
            and machine["sanitizer"] == "none"
            and backend is not None
            and backend != "scalar"
        )
        if capable:
            speedup = doc["headline"]["simd_speedup"]
            if speedup < MIN_SIMD_SPEEDUP:
                return fail(
                    path,
                    f"SIMD fold speedup {speedup:.2f}x below the "
                    f"{MIN_SIMD_SPEEDUP}x floor with backend "
                    f'"{backend}" on a {machine["cores"]}-core machine',
                )
        else:
            if machine is None:
                why = "no machine stamp"
            elif backend is None:
                why = "no simd_backend stamp"
            elif backend == "scalar":
                why = "backend resolved to scalar (no AVX2/NEON on this CPU)"
            else:
                why = (
                    f'{machine["cores"]} cores, sanitizer '
                    f'"{machine["sanitizer"]}"'
                )
            print(f"{path}: SIMD speedup assertion skipped ({why})")

    if doc["bench"] == "fig5_ingest":
        for section, name in REQUIRED_INGEST_METRICS:
            if name not in metrics[section]:
                return fail(path, f'required metric "{name}" missing from {section}')
        if metrics["counters"].get("ingest.dict_snapshot_hits", 0) <= 0:
            return fail(
                path,
                "ingest sweep recorded zero ingest.dict_snapshot_hits — the "
                "lock-free dictionary fast path never ran",
            )
        for key in (
            "serial_parse_p50_us",
            "parallel_parse_p50_us",
            "parse_speedup_4t",
            "sequential_flush_us",
            "pipelined_flush_us",
        ):
            if key not in doc["headline"]:
                return fail(path, f'fig5_ingest headline missing "{key}"')
        capable = (
            machine is not None
            and machine["cores"] >= MIN_INGEST_CORES
            and machine["sanitizer"] == "none"
        )
        if capable:
            speedup = doc["headline"]["parse_speedup_4t"]
            if speedup < MIN_INGEST_SPEEDUP:
                return fail(
                    path,
                    f"4-way parse speedup {speedup:.2f}x below the "
                    f"{MIN_INGEST_SPEEDUP}x floor on a "
                    f'{machine["cores"]}-core machine',
                )
        else:
            why = (
                "no machine stamp"
                if machine is None
                else f'{machine["cores"]} cores, sanitizer "{machine["sanitizer"]}"'
            )
            print(f"{path}: ingest parse-speedup assertion skipped ({why})")

    n_metrics = sum(len(metrics[s]) for s in ("counters", "gauges", "histograms"))
    print(
        f'{path}: ok (bench "{doc["bench"]}", scale {doc["scale"]}, '
        f"{len(doc['headline'])} headline values, {n_metrics} metrics)"
    )
    return 0


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    rc = 0
    for path in argv[1:]:
        rc = max(rc, check_file(path))
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv))
