#!/usr/bin/env python3
"""Validate a BENCH_*.json baseline emitted by bench/ drivers.

Usage: check_bench_baseline.py BENCH_baseline.json [more.json ...]

Checks (stdlib only, no third-party deps):
  * the file is well-formed JSON with the EmitBenchJson shape
    ({"bench", "scale", "headline", "metrics"} — see bench/bench_common.h
    and docs/OBSERVABILITY.md);
  * the embedded registry snapshot has the "counters"/"gauges"/"histograms"
    sections;
  * every histogram satisfies count == sum(bucket counts) — the exporter's
    consistency guarantee;
  * for the canonical baseline (bench == "baseline", from fig9), the AOSI
    health metrics the paper's analysis depends on are present.

Exit codes: 0 ok, 1 validation failure, 2 usage/IO error.
"""

import json
import sys

REQUIRED_BASELINE_METRICS = [
    ("gauges", "aosi.ec_lce_lag"),
    ("gauges", "aosi.lce_lse_lag"),
    ("gauges", "aosi.pending_txs"),
    ("counters", "aosi.purge.records_reclaimed"),
]

# The cache sweep (bench == "fig9_cache") must prove the cache actually ran:
# hit/miss counters and the word-wise kernel instruments have to be present.
REQUIRED_CACHE_METRICS = [
    ("counters", "query.vis_cache_hits"),
    ("counters", "query.vis_cache_misses"),
    ("counters", "query.kernel_words_scanned"),
    ("histograms", "query.kernel_dense_words_permille"),
]


def fail(path, msg):
    print(f"check_bench_baseline: {path}: {msg}", file=sys.stderr)
    return 1


def check_file(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_bench_baseline: {path}: {e}", file=sys.stderr)
        return 2

    for key in ("bench", "scale", "headline", "metrics"):
        if key not in doc:
            return fail(path, f'missing top-level key "{key}"')
    if not isinstance(doc["headline"], dict) or not doc["headline"]:
        return fail(path, "headline must be a non-empty object")
    for k, v in doc["headline"].items():
        if not isinstance(v, (int, float)):
            return fail(path, f'headline "{k}" is not a number')

    metrics = doc["metrics"]
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(metrics.get(section), dict):
            return fail(path, f'metrics missing "{section}" section')

    for name, hist in metrics["histograms"].items():
        bucket_sum = sum(count for _, count in hist.get("buckets", []))
        if hist.get("count") != bucket_sum:
            return fail(
                path,
                f'histogram "{name}": count {hist.get("count")} != '
                f"sum(buckets) {bucket_sum}",
            )

    if doc["bench"] == "baseline":
        for section, name in REQUIRED_BASELINE_METRICS:
            if name not in metrics[section]:
                return fail(path, f'required metric "{name}" missing from {section}')

    if doc["bench"] == "fig9_cache":
        for section, name in REQUIRED_CACHE_METRICS:
            if name not in metrics[section]:
                return fail(path, f'required metric "{name}" missing from {section}')
        hits = metrics["counters"].get("query.vis_cache_hits", 0)
        if hits <= 0:
            return fail(path, "cache sweep recorded zero query.vis_cache_hits")

    n_metrics = sum(len(metrics[s]) for s in ("counters", "gauges", "histograms"))
    print(
        f'{path}: ok (bench "{doc["bench"]}", scale {doc["scale"]}, '
        f"{len(doc['headline'])} headline values, {n_metrics} metrics)"
    )
    return 0


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    rc = 0
    for path in argv[1:]:
        rc = max(rc, check_file(path))
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv))
