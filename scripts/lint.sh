#!/usr/bin/env bash
# Static-analysis driver: aosi_lint (always) + clang-tidy (when available).
# See docs/STATIC_ANALYSIS.md. Usage:
#
#   scripts/lint.sh [--changed-only] [BUILD_DIR]
#
# BUILD_DIR defaults to `build`; it provides compile_commands.json and, if
# already configured, the aosi_lint binary. The script builds aosi_lint
# standalone when the build dir does not have it — the linter has no
# dependencies beyond a C++20 compiler.
#
# --changed-only scopes the per-file rules to files changed relative to the
# merge base with origin/main (fast pre-commit loop). The whole-program
# passes always run over the full tree: lock-order cycles and
# hold-across-blocking chains routinely span files the diff never touched,
# so a diff-scoped program pass would be wrong, not just incomplete.
#
# Artifacts (written into BUILD_DIR when it exists, else the repo root):
#   aosi_lint.sarif      SARIF 2.1.0 for CI upload / code-scanning ingestion
#   waiver_report.json   waiver-debt ledger, gated by check_waiver_budget.py
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
CHANGED_ONLY=0
BUILD_DIR=""
for arg in "$@"; do
  case "$arg" in
    --changed-only) CHANGED_ONLY=1 ;;
    -*) echo "unknown flag: $arg" >&2; exit 2 ;;
    *) BUILD_DIR="$arg" ;;
  esac
done
BUILD_DIR="${BUILD_DIR:-$ROOT/build}"
ARTIFACT_DIR="$BUILD_DIR"
[[ -d "$ARTIFACT_DIR" ]] || ARTIFACT_DIR="$ROOT"
FAILED=0

# --- aosi_lint -------------------------------------------------------------

AOSI_LINT=""
if [[ -x "$BUILD_DIR/tools/aosi_lint/aosi_lint" ]]; then
  AOSI_LINT="$BUILD_DIR/tools/aosi_lint/aosi_lint"
else
  CXX_BIN="${CXX:-c++}"
  AOSI_LINT="$(mktemp -d)/aosi_lint"
  echo "== building aosi_lint standalone ($CXX_BIN)"
  "$CXX_BIN" -std=c++20 -O2 -Wall -Wextra -I "$ROOT/tools" \
    -o "$AOSI_LINT" "$ROOT"/tools/aosi_lint/*.cc
fi

echo "== aosi_lint --selftest"
"$AOSI_LINT" --selftest "$ROOT/tests/lint_fixtures" || FAILED=1

if [[ "$CHANGED_ONLY" -eq 1 ]]; then
  # Per-file rules over the diff only. The merge base against origin/main
  # falls back to HEAD~1 (shallow clones, detached heads).
  BASE="$(git -C "$ROOT" merge-base HEAD origin/main 2>/dev/null ||
          git -C "$ROOT" rev-parse HEAD~1 2>/dev/null || true)"
  CHANGED=()
  if [[ -n "$BASE" ]]; then
    while IFS= read -r f; do
      case "$f" in
        tests/lint_fixtures/*) continue ;;
        *.cc|*.h|*.hpp|*.cpp) CHANGED+=("$ROOT/$f") ;;
      esac
    done < <(git -C "$ROOT" diff --name-only --diff-filter=ACMR "$BASE")
  fi
  if [[ "${#CHANGED[@]}" -gt 0 ]]; then
    echo "== aosi_lint (per-file rules, ${#CHANGED[@]} changed file(s))"
    "$AOSI_LINT" --root "$ROOT" "${CHANGED[@]}" || FAILED=1
  else
    echo "== aosi_lint: no changed sources vs ${BASE:-<unknown base>}"
  fi
  echo "== aosi_lint --program (whole tree; cross-TU passes cannot be" \
       "diff-scoped)"
  "$AOSI_LINT" --root "$ROOT" --program || FAILED=1
else
  echo "== aosi_lint --program (full tree scan + whole-program passes)"
  "$AOSI_LINT" --root "$ROOT" --program \
    --sarif "$ARTIFACT_DIR/aosi_lint.sarif" \
    --waiver-report "$ARTIFACT_DIR/waiver_report.json" || FAILED=1

  echo "== waiver budget"
  python3 "$ROOT/scripts/check_waiver_budget.py" \
    "$ARTIFACT_DIR/waiver_report.json" "$ROOT/LINT_WAIVER_BUDGET" || FAILED=1
fi

# --- clang-tidy ------------------------------------------------------------

if [[ "$CHANGED_ONLY" -eq 0 ]] && command -v clang-tidy >/dev/null 2>&1; then
  if [[ -f "$BUILD_DIR/compile_commands.json" ]]; then
    echo "== clang-tidy (profile: .clang-tidy)"
    # Lint the first-party sources only; headers are covered through
    # HeaderFilterRegex. xargs -P parallelizes across cores.
    git -C "$ROOT" ls-files 'src/**/*.cc' 'tools/**/*.cc' \
      | xargs -P "$(nproc)" -n 8 clang-tidy -p "$BUILD_DIR" --quiet \
      || FAILED=1
  else
    echo "== clang-tidy skipped: no $BUILD_DIR/compile_commands.json" \
         "(configure with cmake first; CMAKE_EXPORT_COMPILE_COMMANDS is on" \
         "by default)"
  fi
else
  [[ "$CHANGED_ONLY" -eq 1 ]] || echo "== clang-tidy skipped: not installed"
fi

if [[ "$FAILED" -ne 0 ]]; then
  echo "lint: FAILED"
  exit 1
fi
echo "lint: OK"
