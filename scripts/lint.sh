#!/usr/bin/env bash
# Static-analysis driver: aosi_lint (always) + clang-tidy (when available).
# See docs/STATIC_ANALYSIS.md. Usage:
#
#   scripts/lint.sh [BUILD_DIR]
#
# BUILD_DIR defaults to `build`; it provides compile_commands.json and, if
# already configured, the aosi_lint binary. The script builds aosi_lint
# standalone when the build dir does not have it — the linter has no
# dependencies beyond a C++20 compiler.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$ROOT/build}"
FAILED=0

# --- aosi_lint -------------------------------------------------------------

AOSI_LINT=""
if [[ -x "$BUILD_DIR/tools/aosi_lint/aosi_lint" ]]; then
  AOSI_LINT="$BUILD_DIR/tools/aosi_lint/aosi_lint"
else
  CXX_BIN="${CXX:-c++}"
  AOSI_LINT="$(mktemp -d)/aosi_lint"
  echo "== building aosi_lint standalone ($CXX_BIN)"
  "$CXX_BIN" -std=c++20 -O2 -Wall -Wextra \
    -o "$AOSI_LINT" "$ROOT/tools/aosi_lint/aosi_lint.cc"
fi

echo "== aosi_lint --selftest"
"$AOSI_LINT" --selftest "$ROOT/tests/lint_fixtures" || FAILED=1

echo "== aosi_lint --root"
"$AOSI_LINT" --root "$ROOT" || FAILED=1

# --- clang-tidy ------------------------------------------------------------

if command -v clang-tidy >/dev/null 2>&1; then
  if [[ -f "$BUILD_DIR/compile_commands.json" ]]; then
    echo "== clang-tidy (profile: .clang-tidy)"
    # Lint the first-party sources only; headers are covered through
    # HeaderFilterRegex. xargs -P parallelizes across cores.
    git -C "$ROOT" ls-files 'src/**/*.cc' 'tools/**/*.cc' \
      | xargs -P "$(nproc)" -n 8 clang-tidy -p "$BUILD_DIR" --quiet \
      || FAILED=1
  else
    echo "== clang-tidy skipped: no $BUILD_DIR/compile_commands.json" \
         "(configure with cmake first; CMAKE_EXPORT_COMPILE_COMMANDS is on" \
         "by default)"
  fi
else
  echo "== clang-tidy skipped: not installed"
fi

if [[ "$FAILED" -ne 0 ]]; then
  echo "lint: FAILED"
  exit 1
fi
echo "lint: OK"
