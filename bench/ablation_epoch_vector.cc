// Ablation — epochs-vector mechanics (google-benchmark).
//
// Micro-costs behind the Fig 8/9 results: visibility-bitmap construction as
// a function of epochs-vector length, the effect of purge on that cost, the
// delete-cleanup second pass, and bess-packed coordinate reads.

#include <benchmark/benchmark.h>

#include "aosi/purge.h"
#include "aosi/visibility.h"
#include "common/random.h"
#include "storage/bess_column.h"

using namespace cubrick;
using namespace cubrick::aosi;

namespace {

EpochVector MakeHistory(uint64_t entries, uint64_t rows_per_entry,
                        bool with_deletes = false) {
  EpochVector ev;
  for (uint64_t e = 1; e <= entries; ++e) {
    ev.RecordAppend(e, rows_per_entry);
    if (with_deletes && e % 64 == 0) {
      ev.RecordDelete(e);
    }
  }
  return ev;
}

void BM_BuildVisibility(benchmark::State& state) {
  const uint64_t entries = static_cast<uint64_t>(state.range(0));
  const uint64_t rows_per_entry = 1'000'000 / entries;
  EpochVector ev = MakeHistory(entries, rows_per_entry);
  Snapshot snap{entries / 2, {}};
  for (auto _ : state) {
    Bitmap bm = BuildVisibilityBitmap(ev, snap);
    benchmark::DoNotOptimize(bm);
  }
  state.counters["entries"] = static_cast<double>(entries);
}
BENCHMARK(BM_BuildVisibility)->Arg(1)->Arg(16)->Arg(256)->Arg(4096)
    ->Arg(65536);

void BM_BuildVisibility_WithDeps(benchmark::State& state) {
  const uint64_t entries = 4096;
  EpochVector ev = MakeHistory(entries, 256);
  std::vector<Epoch> deps;
  for (uint64_t d = 0; d < static_cast<uint64_t>(state.range(0)); ++d) {
    deps.push_back(1 + d * 7 % entries);
  }
  Snapshot snap{entries, EpochSet(deps)};
  for (auto _ : state) {
    Bitmap bm = BuildVisibilityBitmap(ev, snap);
    benchmark::DoNotOptimize(bm);
  }
  state.counters["deps"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_BuildVisibility_WithDeps)->Arg(0)->Arg(16)->Arg(256)->Arg(1024);

void BM_BuildVisibility_DeleteCleanupPass(benchmark::State& state) {
  EpochVector ev = MakeHistory(4096, 256, /*with_deletes=*/true);
  Snapshot snap{4096, {}};
  for (auto _ : state) {
    Bitmap bm = BuildVisibilityBitmap(ev, snap);
    benchmark::DoNotOptimize(bm);
  }
}
BENCHMARK(BM_BuildVisibility_DeleteCleanupPass);

void BM_VisibilityAfterPurge(benchmark::State& state) {
  // Same data as BM_BuildVisibility/4096, but history recycled at LSE.
  EpochVector ev = MakeHistory(4096, 256);
  auto plan = PlanPurge(ev, /*lse=*/4097);
  CUBRICK_CHECK(plan.needed);
  const EpochVector purged = plan.new_history;
  CUBRICK_CHECK(purged.num_entries() == 1);
  Snapshot snap{4098, {}};
  for (auto _ : state) {
    Bitmap bm = BuildVisibilityBitmap(purged, snap);
    benchmark::DoNotOptimize(bm);
  }
}
BENCHMARK(BM_VisibilityAfterPurge);

void BM_PlanPurge(benchmark::State& state) {
  const uint64_t entries = static_cast<uint64_t>(state.range(0));
  EpochVector ev = MakeHistory(entries, 64, /*with_deletes=*/true);
  for (auto _ : state) {
    auto plan = PlanPurge(ev, entries + 1);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_PlanPurge)->Arg(256)->Arg(4096);

void BM_PlanRollback(benchmark::State& state) {
  const uint64_t entries = 4096;
  EpochVector ev = MakeHistory(entries, 64);
  for (auto _ : state) {
    auto plan = PlanRollback(ev, entries / 2);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_PlanRollback);

void BM_BessRead(benchmark::State& state) {
  const uint32_t bits = static_cast<uint32_t>(state.range(0));
  BessColumn bess({bits, bits, bits});
  Random rng(9);
  const uint64_t mask = bits >= 64 ? ~0ULL : (1ULL << bits) - 1;
  for (int i = 0; i < 100'000; ++i) {
    bess.Append({rng.Next() & mask, rng.Next() & mask, rng.Next() & mask});
  }
  uint64_t row = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bess.Get(row % 100'000, row % 3));
    ++row;
  }
  state.counters["bits_per_record"] =
      static_cast<double>(bess.bits_per_record());
}
BENCHMARK(BM_BessRead)->Arg(1)->Arg(7)->Arg(21);

void BM_EpochSetContains(benchmark::State& state) {
  EpochSet set;
  for (uint64_t e = 1; e <= static_cast<uint64_t>(state.range(0)); ++e) {
    set.Insert(e * 3);
  }
  uint64_t probe = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(set.Contains(probe++ % 10'000));
  }
}
BENCHMARK(BM_EpochSetContains)->Arg(16)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
