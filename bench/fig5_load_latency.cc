// Figure 5 — Latency distribution of load requests.
//
// Paper setup (§V-B): a production cluster continuously ingesting ~1M
// records/s; per load request, parse latency and flush latency are small
// and the total is dominated by the network hop that forwards records to
// remote nodes. This driver ingests batches into a simulated 4-node
// cluster with non-zero message latency and prints the same three
// distributions (parse / flush / total). Expected shape: parse < flush,
// and total dominated by the forwarding (network) component.

#include <cinttypes>

#include "bench_common.h"
#include "cluster/cluster.h"

using namespace cubrick;
using namespace cubrick::bench;
using cubrick::cluster::Cluster;
using cubrick::cluster::ClusterOptions;
using cubrick::cluster::DistTxn;
using cubrick::cluster::LoadStats;

int main() {
  InitBenchObs();
  const uint64_t kBatches = Scaled(200);
  const uint64_t kBatchRows = 5000;

  ClusterOptions options;
  options.num_nodes = 4;
  options.shards_per_cube = 1;
  options.threaded_shards = true;
  options.replication_factor = 1;
  options.message_latency_us = 150;  // simulated datacenter hop
  Cluster cluster(options);
  CUBRICK_CHECK(cluster
                    .CreateCube("stream",
                                {{"shard_key", 64, 4, false}},
                                {{"value", DataType::kInt64}})
                    .ok());

  obs::LatencyRecorder parse, flush, total;
  Random rng(11);
  for (uint64_t b = 0; b < kBatches; ++b) {
    std::vector<Record> records;
    records.reserve(kBatchRows);
    for (uint64_t i = 0; i < kBatchRows; ++i) {
      records.push_back({static_cast<int64_t>(rng.Uniform(64)),
                         static_cast<int64_t>(rng.Next() & 0xffffff)});
    }
    auto txn = cluster.BeginReadWrite(1 + b % options.num_nodes);
    CUBRICK_CHECK(txn.ok());
    LoadStats stats;
    CUBRICK_CHECK(cluster.Append(&*txn, "stream", records, {}, &stats).ok());
    CUBRICK_CHECK(cluster.Commit(&*txn).ok());
    parse.Record(stats.parse_us);
    flush.Record(stats.flush_us);
    total.Record(stats.total_us);
  }

  std::printf("Figure 5: load request latency distribution "
              "(%" PRIu64 " requests x %" PRIu64 " rows, 4-node cluster, "
              "%u us simulated hop)\n\n",
              kBatches, kBatchRows, options.message_latency_us);
  std::printf("%-22s %10s %10s %10s %10s %10s\n", "component", "p25_us",
              "p50_us", "p75_us", "p99_us", "mean_us");
  auto row = [](const char* name, obs::LatencyRecorder& r) {
    std::printf("%-22s %10" PRId64 " %10" PRId64 " %10" PRId64 " %10" PRId64
                " %10.0f\n",
                name, r.Percentile(25), r.Percentile(50), r.Percentile(75),
                r.Percentile(99), r.Mean());
  };
  row("parse", parse);
  row("forward+flush", flush);
  row("total", total);
  std::printf(
      "\nShape check: total is dominated by forward+flush (network hops), "
      "parse stays small — matching the paper's Fig 5.\n");
  std::printf("Ingested %" PRIu64 " records total.\n",
              cluster.TotalRecords());
  EmitBenchJson("fig5",
                {{"requests", static_cast<double>(kBatches)},
                 {"parse_p50_us", static_cast<double>(parse.Percentile(50))},
                 {"flush_p50_us", static_cast<double>(flush.Percentile(50))},
                 {"total_p50_us", static_cast<double>(total.Percentile(50))},
                 {"total_p99_us", static_cast<double>(total.Percentile(99))}});
  return 0;
}
