// Figure 5 — Latency distribution of load requests.
//
// Paper setup (§V-B): a production cluster continuously ingesting ~1M
// records/s; per load request, parse latency and flush latency are small
// and the total is dominated by the network hop that forwards records to
// remote nodes. This driver ingests batches into a simulated 4-node
// cluster with non-zero message latency and prints the same three
// distributions (parse / flush / total). Expected shape: parse < flush,
// and total dominated by the forwarding (network) component.
//
// A second, single-node section sweeps the morsel-parallel ingest pipeline
// (DESIGN.md §4f): the same string-heavy batches are parsed serially and
// at 4-way fan-out in interleaved rounds (so machine noise hits both arms
// equally), then flushed sequentially vs pipelined through
// Table::AppendAsync. Emits BENCH_fig5_ingest.json; CI gates the 4-thread
// parse speedup behind the machine-capability stamp
// (scripts/check_bench_baseline.py).

#include <cinttypes>
#include <future>

#include "bench_common.h"
#include "cluster/cluster.h"
#include "common/stopwatch.h"

using namespace cubrick;
using namespace cubrick::bench;
using cubrick::cluster::Cluster;
using cubrick::cluster::ClusterOptions;
using cubrick::cluster::DistTxn;
using cubrick::cluster::LoadStats;

namespace {

/// String-heavy batch for the ingest-pipeline sweep: a dictionary-encoded
/// dimension plus a string metric, so the parse cost is dominated by the
/// two-phase dictionary encode the sweep is measuring.
std::vector<Record> StringBatch(Random* rng, uint64_t rows) {
  std::vector<Record> records;
  records.reserve(rows);
  for (uint64_t i = 0; i < rows; ++i) {
    records.push_back({"region-" + std::to_string(rng->Uniform(64)),
                       static_cast<int64_t>(rng->Next() & 0xffffff),
                       "tag-" + std::to_string(rng->Uniform(512))});
  }
  return records;
}

/// Serial-vs-parallel interleaved ingest sweep (single node). Returns the
/// values EmitBenchJson("fig5_ingest") publishes.
BenchHeadline RunIngestPipelineSweep() {
  const uint64_t kRounds = Scaled(20);
  const uint64_t kRows = 20'000;
  const size_t kFanOut = 4;

  DatabaseOptions options;
  options.shards_per_cube = 4;
  options.threaded_shards = true;
  Database db(options);
  CUBRICK_CHECK(db.CreateCube("ingest",
                              {{"region", 64, 4, true}},
                              {{"value", DataType::kInt64},
                               {"tag", DataType::kString}})
                    .ok());
  Table* table = db.FindTable("ingest");
  const CubeSchema& schema = table->schema();

  // Warm-up: one parse populates the dictionaries, so the timed rounds
  // measure the steady state (snapshot hits, not first-contact inserts).
  Random rng(23);
  (void)ParseRecords(schema, StringBatch(&rng, kRows)).value();

  obs::LatencyRecorder serial_parse, parallel_parse;
  for (uint64_t r = 0; r < kRounds; ++r) {
    const auto records = StringBatch(&rng, kRows);
    // Interleaved arms: serial then parallel on the identical batch.
    Stopwatch s1;
    auto serial = ParseRecords(schema, records, {}, 1);
    CUBRICK_CHECK(serial.ok());
    serial_parse.Record(s1.ElapsedMicros());
    Stopwatch s2;
    auto parallel = ParseRecords(schema, records, {}, kFanOut);
    CUBRICK_CHECK(parallel.ok());
    parallel_parse.Record(s2.ElapsedMicros());
    CUBRICK_CHECK(serial->accepted == parallel->accepted);
  }

  // Flush arms: sequential Append (wait per batch) vs pipelined
  // AppendAsync (parse of batch k+1 overlaps the flush of batch k).
  const uint64_t kFlushBatches = 8;
  std::vector<std::vector<Record>> flush_batches;
  for (uint64_t b = 0; b < kFlushBatches; ++b) {
    flush_batches.push_back(StringBatch(&rng, kRows));
  }
  Stopwatch sequential_clock;
  for (const auto& records : flush_batches) {
    aosi::Txn txn = db.Begin();
    auto parsed = ParseRecords(schema, records, {}, kFanOut);
    CUBRICK_CHECK(parsed.ok());
    CUBRICK_CHECK(table->Append(txn.epoch, std::move(parsed->batches)).ok());
    CUBRICK_CHECK(db.Commit(txn).ok());
  }
  const int64_t sequential_us = sequential_clock.ElapsedMicros();

  Stopwatch pipelined_clock;
  std::vector<std::pair<aosi::Txn, std::future<void>>> in_flight;
  for (const auto& records : flush_batches) {
    aosi::Txn txn = db.Begin();
    auto parsed = ParseRecords(schema, records, {}, kFanOut);
    CUBRICK_CHECK(parsed.ok());
    in_flight.emplace_back(
        txn, table->AppendAsync(txn.epoch, std::move(parsed->batches)));
  }
  for (auto& [txn, done] : in_flight) {
    done.get();
    CUBRICK_CHECK(db.Commit(txn).ok());
  }
  const int64_t pipelined_us = pipelined_clock.ElapsedMicros();

  const double speedup =
      parallel_parse.Mean() > 0 ? serial_parse.Mean() / parallel_parse.Mean()
                                : 0.0;
  std::printf("\nIngest pipeline sweep (single node, %" PRIu64
              " interleaved rounds x %" PRIu64 " rows):\n",
              kRounds, kRows);
  std::printf("  parse serial     p50 %8" PRId64 " us  mean %8.0f us\n",
              serial_parse.Percentile(50), serial_parse.Mean());
  std::printf("  parse 4-way      p50 %8" PRId64 " us  mean %8.0f us  "
              "(speedup %.2fx)\n",
              parallel_parse.Percentile(50), parallel_parse.Mean(), speedup);
  std::printf("  flush sequential %8" PRId64 " us for %" PRIu64 " batches\n",
              sequential_us, kFlushBatches);
  std::printf("  flush pipelined  %8" PRId64 " us for %" PRIu64 " batches\n",
              pipelined_us, kFlushBatches);
  return {
      {"rounds", static_cast<double>(kRounds)},
      {"serial_parse_p50_us",
       static_cast<double>(serial_parse.Percentile(50))},
      {"parallel_parse_p50_us",
       static_cast<double>(parallel_parse.Percentile(50))},
      {"parse_speedup_4t", speedup},
      {"sequential_flush_us", static_cast<double>(sequential_us)},
      {"pipelined_flush_us", static_cast<double>(pipelined_us)},
  };
}

}  // namespace

int main() {
  InitBenchObs();
  const uint64_t kBatches = Scaled(200);
  const uint64_t kBatchRows = 5000;

  ClusterOptions options;
  options.num_nodes = 4;
  options.shards_per_cube = 1;
  options.threaded_shards = true;
  options.replication_factor = 1;
  options.message_latency_us = 150;  // simulated datacenter hop
  Cluster cluster(options);
  CUBRICK_CHECK(cluster
                    .CreateCube("stream",
                                {{"shard_key", 64, 4, false}},
                                {{"value", DataType::kInt64}})
                    .ok());

  obs::LatencyRecorder parse, flush, total;
  Random rng(11);
  for (uint64_t b = 0; b < kBatches; ++b) {
    std::vector<Record> records;
    records.reserve(kBatchRows);
    for (uint64_t i = 0; i < kBatchRows; ++i) {
      records.push_back({static_cast<int64_t>(rng.Uniform(64)),
                         static_cast<int64_t>(rng.Next() & 0xffffff)});
    }
    auto txn = cluster.BeginReadWrite(1 + b % options.num_nodes);
    CUBRICK_CHECK(txn.ok());
    LoadStats stats;
    CUBRICK_CHECK(cluster.Append(&*txn, "stream", records, {}, &stats).ok());
    CUBRICK_CHECK(cluster.Commit(&*txn).ok());
    parse.Record(stats.parse_us);
    flush.Record(stats.flush_us);
    total.Record(stats.total_us);
  }

  std::printf("Figure 5: load request latency distribution "
              "(%" PRIu64 " requests x %" PRIu64 " rows, 4-node cluster, "
              "%u us simulated hop)\n\n",
              kBatches, kBatchRows, options.message_latency_us);
  std::printf("%-22s %10s %10s %10s %10s %10s\n", "component", "p25_us",
              "p50_us", "p75_us", "p99_us", "mean_us");
  auto row = [](const char* name, obs::LatencyRecorder& r) {
    std::printf("%-22s %10" PRId64 " %10" PRId64 " %10" PRId64 " %10" PRId64
                " %10.0f\n",
                name, r.Percentile(25), r.Percentile(50), r.Percentile(75),
                r.Percentile(99), r.Mean());
  };
  row("parse", parse);
  row("forward+flush", flush);
  row("total", total);
  std::printf(
      "\nShape check: total is dominated by forward+flush (network hops), "
      "parse stays small — matching the paper's Fig 5.\n");
  std::printf("Ingested %" PRIu64 " records total.\n",
              cluster.TotalRecords());
  EmitBenchJson("fig5",
                {{"requests", static_cast<double>(kBatches)},
                 {"parse_p50_us", static_cast<double>(parse.Percentile(50))},
                 {"flush_p50_us", static_cast<double>(flush.Percentile(50))},
                 {"total_p50_us", static_cast<double>(total.Percentile(50))},
                 {"total_p99_us", static_cast<double>(total.Percentile(99))}});

  EmitBenchJson("fig5_ingest", RunIngestPipelineSweep());
  return 0;
}
