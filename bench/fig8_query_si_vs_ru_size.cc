// Figure 8 — Query latency: Snapshot Isolation vs Read Uncommitted,
// as a function of dataset size.
//
// Paper setup (§VI-B): a single thread runs the same query repeatedly,
// alternating between SI (epochs-vector bitmap generation + pendingTxs
// bookkeeping) and best-effort RU (scan everything). The gap between the
// two series is the CPU cost of enforcing SI, which the paper reports as
// minor. Expected shape: both latencies grow linearly with dataset size;
// SI tracks RU within a few percent.

#include <cinttypes>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "engine/table.h"

using namespace cubrick;
using namespace cubrick::bench;

int main() {
  InitBenchObs();
  const std::vector<uint64_t> kSizes = {
      Scaled(10'000), Scaled(50'000), Scaled(100'000), Scaled(250'000),
      Scaled(500'000)};
  const uint64_t kRowsPerTxn = 10'000;
  const int kReps = 41;

  std::printf(
      "Figure 8: query latency SI vs RU, growing dataset "
      "(same aggregation, alternating modes, single thread)\n\n");
  std::printf("%12s %10s %12s %12s %10s %12s\n", "rows", "txns", "si_p50_us",
              "ru_p50_us", "overhead", "si_par4_us");

  double last_si = 0.0, last_ru = 0.0, last_par4 = 0.0;
  for (uint64_t size : kSizes) {
    Database db;  // inline shards: single-threaded latency measurement
    CUBRICK_CHECK(CreateSingleColumnCube(&db, "t").ok());
    Random rng(42);
    uint64_t loaded = 0;
    uint64_t txns = 0;
    while (loaded < size) {
      const uint64_t n = std::min(kRowsPerTxn, size - loaded);
      CUBRICK_CHECK(db.Load("t", SingleColumnBatch(&rng, n)).ok());
      loaded += n;
      ++txns;
    }

    const cubrick::Query q = AggregationQuery();
    // Alternate SI and RU within the same run, exactly as the paper's
    // single-thread experiment does; warm up once per mode.
    (void)db.Query("t", q, ScanMode::kSnapshotIsolation);
    (void)db.Query("t", q, ScanMode::kReadUncommitted);
    obs::LatencyRecorder si_rec, ru_rec;
    for (int i = 0; i < kReps; ++i) {
      Stopwatch t1;
      CUBRICK_CHECK(db.Query("t", q, ScanMode::kSnapshotIsolation).ok());
      si_rec.Record(t1.ElapsedMicros());
      Stopwatch t2;
      CUBRICK_CHECK(db.Query("t", q, ScanMode::kReadUncommitted).ok());
      ru_rec.Record(t2.ElapsedMicros());
    }
    const double si = static_cast<double>(si_rec.Percentile(50));
    const double ru = static_cast<double>(ru_rec.Percentile(50));
    // Same SI query through the morsel-parallel executor at fan-out 4: how
    // much of the single-thread latency the scan parallelism buys back at
    // each dataset size (tracks core count; ~1.0x on one core).
    Table* table = db.FindTable("t");
    CUBRICK_CHECK(table != nullptr);
    aosi::Txn ro = db.BeginReadOnly();
    obs::LatencyRecorder par_rec;
    for (int i = 0; i < kReps; ++i) {
      Stopwatch t3;
      (void)table->Scan(ro.snapshot(), ScanMode::kSnapshotIsolation, q,
                        nullptr, 4);
      par_rec.Record(t3.ElapsedMicros());
    }
    db.txns().EndReadOnly(ro);
    const double par4 = static_cast<double>(par_rec.Percentile(50));
    std::printf("%12" PRIu64 " %10" PRIu64 " %12.0f %12.0f %9.2f%% %12.0f\n",
                size, txns, si, ru,
                ru == 0 ? 0.0 : 100.0 * (si - ru) / ru, par4);
    std::fflush(stdout);
    last_si = si;
    last_ru = ru;
    last_par4 = par4;
  }
  std::printf(
      "\nShape check: SI latency should track RU within a small margin — "
      "the paper reports the SI overhead as minor.\n");
  EmitBenchJson(
      "fig8",
      {{"largest_rows", static_cast<double>(kSizes.back())},
       {"si_p50_us", last_si},
       {"ru_p50_us", last_ru},
       {"si_par4_p50_us", last_par4},
       {"overhead_pct",
        last_ru == 0 ? 0.0 : 100.0 * (last_si - last_ru) / last_ru}});
  return 0;
}
