// Ablation — the §III-C5 rollback-index trade-off (google-benchmark).
//
// The paper rejects a global txn->partition hash map because rollbacks are
// rare and the map costs memory. This bench quantifies both sides: rollback
// latency with and without the index as the number of partitions grows, and
// the index's memory footprint under write activity.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "engine/table.h"
#include "ingest/parser.h"

using namespace cubrick;

namespace {

std::shared_ptr<const CubeSchema> ManyBrickSchema() {
  // 4096 possible bricks.
  return CubeSchema::Make("t", {{"k", 4096, 1, false}},
                          {{"v", DataType::kInt64}})
      .value();
}

/// Populates `table`: `bricks` partitions filled by epoch 1, then epoch 2
/// touches only 4 partitions — the victim to roll back.
void Populate(Table* table, int64_t bricks) {
  auto schema = table->schema_ptr();
  std::vector<Record> base;
  for (int64_t k = 0; k < bricks; ++k) {
    base.push_back({k, k});
  }
  CUBRICK_CHECK(
      table->Append(1, ParseRecords(*schema, base).value().batches).ok());
  std::vector<Record> victim = {{0, 0}, {1, 1}, {2, 2}, {3, 3}};
  CUBRICK_CHECK(
      table->Append(2, ParseRecords(*schema, victim).value().batches).ok());
}

void BM_Rollback_FullScan(benchmark::State& state) {
  const int64_t bricks = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    Table table(ManyBrickSchema(), 2, false, /*rollback_index=*/false);
    Populate(&table, bricks);
    state.ResumeTiming();
    table.Rollback(2);  // must scan every partition's epochs vector
  }
  state.counters["bricks"] = static_cast<double>(bricks);
}
BENCHMARK(BM_Rollback_FullScan)->Arg(64)->Arg(512)->Arg(4096)
    ->Unit(benchmark::kMicrosecond);

void BM_Rollback_Indexed(benchmark::State& state) {
  const int64_t bricks = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    Table table(ManyBrickSchema(), 2, false, /*rollback_index=*/true);
    Populate(&table, bricks);
    state.ResumeTiming();
    table.Rollback(2);  // touches only the victim's 4 partitions
  }
  state.counters["bricks"] = static_cast<double>(bricks);
}
BENCHMARK(BM_Rollback_Indexed)->Arg(64)->Arg(512)->Arg(4096)
    ->Unit(benchmark::kMicrosecond);

void BM_RollbackIndex_MemoryCost(benchmark::State& state) {
  // The other side of the trade-off: index footprint under sustained write
  // activity with no purge.
  for (auto _ : state) {
    Table table(ManyBrickSchema(), 2, false, /*rollback_index=*/true);
    auto schema = table.schema_ptr();
    Random rng(3);
    for (aosi::Epoch e = 1; e <= 500; ++e) {
      std::vector<Record> rows;
      for (int i = 0; i < 8; ++i) {
        rows.push_back(
            {static_cast<int64_t>(rng.Uniform(4096)), 1});
      }
      CUBRICK_CHECK(
          table.Append(e, ParseRecords(*schema, rows).value().batches).ok());
    }
    state.counters["index_bytes"] =
        static_cast<double>(table.rollback_index()->MemoryUsage());
    state.counters["epochs_bytes"] =
        static_cast<double>(table.HistoryMemoryUsage());
  }
}
BENCHMARK(BM_RollbackIndex_MemoryCost)->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
