// Figure 9 — Query latency: SI vs RU under transactional-history pressure.
//
// Second §VI-B experiment: the dataset size is fixed, but the number of
// transactions that loaded it (and hence epochs-vector entries) and the
// number of still-pending transactions at query time vary. SI pays for
// (a) walking the epochs vector to build the visibility bitmap and
// (b) testing epochs against the deps set; RU pays for neither.
// Expected shape: SI overhead grows mildly with entries/pending count but
// stays a small fraction of total scan time; after purge recycles entries,
// SI converges back to RU.

#include <atomic>
#include <cinttypes>
#include <memory>
#include <thread>

#include "bench_common.h"
#include "check/online_checker.h"
#include "common/simd.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "engine/table.h"

using namespace cubrick;
using namespace cubrick::bench;

namespace {

double MedianLatencyUs(Database* db, const cubrick::Query& q, ScanMode mode,
                       int reps) {
  obs::LatencyRecorder recorder;
  for (int i = 0; i < reps; ++i) {
    Stopwatch timer;
    auto result = db->Query("t", q, mode);
    CUBRICK_CHECK(result.ok());
    recorder.Record(timer.ElapsedMicros());
  }
  return static_cast<double>(recorder.Percentile(50));
}

}  // namespace

int main() {
  InitBenchObs();
  const uint64_t kRows = Scaled(200'000);
  const int kReps = 15;
  const std::vector<uint64_t> kTxnCounts = {1, 10, 100, 1000, 10000};
  const std::vector<size_t> kPendingCounts = {0, 16, 256};

  std::printf(
      "Figure 9: query latency SI vs RU vs transactional history "
      "(fixed %" PRIu64 " rows)\n\n",
      kRows);
  std::printf("%8s %9s %12s %12s %10s\n", "txns", "pending", "si_p50_us",
              "ru_p50_us", "overhead");

  double last_si = 0.0, last_ru = 0.0;
  for (uint64_t txns : kTxnCounts) {
    if (txns > kRows) continue;
    for (size_t pending : kPendingCounts) {
      Database db;
      CUBRICK_CHECK(CreateSingleColumnCube(&db, "t").ok());
      Random rng(7);
      const uint64_t per_txn = kRows / txns;
      for (uint64_t t = 0; t < txns; ++t) {
        CUBRICK_CHECK(db.Load("t", SingleColumnBatch(&rng, per_txn)).ok());
      }
      // Open (and leave pending) RW transactions so that RO queries carry a
      // non-trivial exclusion set... RO queries run at LCE with empty deps,
      // so to exercise deps we query inside an explicit RW transaction that
      // observed the pending set.
      std::vector<aosi::Txn> open;
      for (size_t p = 0; p < pending; ++p) {
        open.push_back(db.Begin());
      }
      aosi::Txn reader = db.Begin();  // deps = all `pending` open txns

      const cubrick::Query q = AggregationQuery();
      (void)db.QueryIn(reader, "t", q, ScanMode::kSnapshotIsolation);
      (void)db.QueryIn(reader, "t", q, ScanMode::kReadUncommitted);
      obs::LatencyRecorder si_rec, ru_rec;
      for (int i = 0; i < kReps; ++i) {
        Stopwatch t1;
        CUBRICK_CHECK(
            db.QueryIn(reader, "t", q, ScanMode::kSnapshotIsolation).ok());
        si_rec.Record(t1.ElapsedMicros());
        Stopwatch t2;
        CUBRICK_CHECK(
            db.QueryIn(reader, "t", q, ScanMode::kReadUncommitted).ok());
        ru_rec.Record(t2.ElapsedMicros());
      }
      const double si = static_cast<double>(si_rec.Percentile(50));
      const double ru = static_cast<double>(ru_rec.Percentile(50));
      std::printf("%8" PRIu64 " %9zu %12.0f %12.0f %9.2f%%\n", txns, pending,
                  si, ru, ru == 0 ? 0.0 : 100.0 * (si - ru) / ru);
      std::fflush(stdout);
      last_si = si;
      last_ru = ru;

      CUBRICK_CHECK(db.Commit(reader).ok());
      for (auto& txn : open) {
        CUBRICK_CHECK(db.Commit(txn).ok());
      }
    }
  }

  // Purge convergence: after recycling entries, SI cost collapses.
  {
    Database db;
    CUBRICK_CHECK(CreateSingleColumnCube(&db, "t").ok());
    Random rng(7);
    for (uint64_t t = 0; t < 10000; ++t) {
      CUBRICK_CHECK(db.Load("t", SingleColumnBatch(&rng, kRows / 10000)).ok());
    }
    const cubrick::Query q = AggregationQuery();
    const double before =
        MedianLatencyUs(&db, q, ScanMode::kSnapshotIsolation, kReps);
    db.txns().TryAdvanceLSE(db.txns().LCE());
    db.PurgeAll();
    const double after =
        MedianLatencyUs(&db, q, ScanMode::kSnapshotIsolation, kReps);
    const double ru = MedianLatencyUs(&db, q, ScanMode::kReadUncommitted,
                                      kReps);
    std::printf(
        "\nPurge effect (10000 txns): SI p50 %.0f us before purge, %.0f us "
        "after, RU %.0f us\n",
        before, after, ru);

    // The canonical machine-readable baseline for CI: the fig9 headline
    // numbers plus the full registry snapshot of this run's AOSI gauges,
    // query histograms and purge counters.
    EmitBenchJson("baseline",
                  {{"si_p50_us", last_si},
                   {"ru_p50_us", last_ru},
                   {"purge_si_before_us", before},
                   {"purge_si_after_us", after},
                   {"purge_ru_us", ru}});
  }

  // Morsel-parallel scan sweep: the same SI aggregation over a fixed
  // dataset, fanning bricks out over the shared thread pool at 1/2/4/8
  // workers per shard. The headline number is the 4-thread speedup over
  // the serial executor; scripts/check_bench_baseline.py validates the
  // JSON shape in CI. Speedup tracks the machine's core count — a
  // single-core container reports ~1.0x by construction.
  {
    Database db;
    CUBRICK_CHECK(CreateSingleColumnCube(&db, "t").ok());
    Random rng(7);
    // Many medium loads: every one of the 16 bricks carries a multi-entry
    // history, so per-morsel work includes real bitmap construction.
    for (uint64_t t = 0; t < 64; ++t) {
      CUBRICK_CHECK(db.Load("t", SingleColumnBatch(&rng, kRows / 64)).ok());
    }
    Table* table = db.FindTable("t");
    CUBRICK_CHECK(table != nullptr);
    aosi::Txn ro = db.BeginReadOnly();
    const cubrick::Query q = AggregationQuery();
    const QueryResult reference =
        table->Scan(ro.snapshot(), ScanMode::kSnapshotIsolation, q);

    std::printf("\nMorsel-parallel scan (fixed %" PRIu64 " rows, %zu pool "
                "threads available)\n",
                kRows, ThreadPool::Global().num_threads());
    std::printf("%8s %12s %9s\n", "threads", "p50_us", "speedup");
    std::vector<double> p50_by_threads;
    for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
      obs::LatencyRecorder rec;
      for (int i = 0; i < kReps; ++i) {
        Stopwatch timer;
        const QueryResult result = table->Scan(
            ro.snapshot(), ScanMode::kSnapshotIsolation, q, nullptr, threads);
        rec.Record(timer.ElapsedMicros());
        // Parallel merge must reproduce the serial answer exactly (integer
        // metric values: double sums are exact, order-independent).
        CUBRICK_CHECK(result.num_groups() == reference.num_groups());
        for (const auto& [key, states] : reference.groups()) {
          CUBRICK_CHECK(result.Value(key, 0, AggSpec::Fn::kSum) ==
                        states[0].Finalize(AggSpec::Fn::kSum));
          CUBRICK_CHECK(result.Value(key, 1, AggSpec::Fn::kCount) ==
                        states[1].Finalize(AggSpec::Fn::kCount));
        }
      }
      const double p50 = static_cast<double>(rec.Percentile(50));
      p50_by_threads.push_back(p50);
      std::printf("%8zu %12.0f %8.2fx\n", threads, p50,
                  p50 == 0 ? 0.0 : p50_by_threads[0] / p50);
      std::fflush(stdout);
    }
    db.txns().EndReadOnly(ro);

    const double serial = p50_by_threads[0];
    EmitBenchJson(
        "fig9_parallel",
        {{"serial_p50_us", serial},
         {"par1_p50_us", p50_by_threads[0]},
         {"par2_p50_us", p50_by_threads[1]},
         {"par4_p50_us", p50_by_threads[2]},
         {"par8_p50_us", p50_by_threads[3]},
         {"speedup_4t",
          p50_by_threads[2] == 0 ? 0.0 : serial / p50_by_threads[2]}});
  }

  // Visibility-bitmap cache sweep (DESIGN.md §4c): steady state — no
  // concurrent writers — so every cached scan after the first is a pure
  // cache hit. Uncached SI rebuilds each brick's bitmap per scan (cost
  // grows with epochs-vector entries); cached SI should sit within ~10% of
  // RU regardless of history length. Every rep asserts exact-result
  // equivalence: cached vs uncached, serial vs parallel.
  {
    std::printf("\nVisibility-cache sweep (fixed %" PRIu64
                " rows, steady state)\n",
                kRows);
    std::printf("%8s %14s %16s %12s %10s\n", "txns", "si_cached_us",
                "si_uncached_us", "ru_us", "overhead");
    double cached_p50 = 0.0, uncached_p50 = 0.0, ru_p50 = 0.0;
    for (uint64_t txns : {uint64_t{100}, uint64_t{1000}, uint64_t{10000}}) {
      if (txns > kRows) continue;
      Database db;
      CUBRICK_CHECK(CreateSingleColumnCube(&db, "t").ok());
      Random rng(7);
      for (uint64_t t = 0; t < txns; ++t) {
        CUBRICK_CHECK(db.Load("t", SingleColumnBatch(&rng, kRows / txns)).ok());
      }
      Table* table = db.FindTable("t");
      CUBRICK_CHECK(table != nullptr);
      aosi::Txn ro = db.BeginReadOnly();
      const cubrick::Query q = AggregationQuery();
      const QueryResult reference = table->Scan(
          ro.snapshot(), ScanMode::kSnapshotIsolation, q, nullptr, 1,
          /*visibility_cache=*/false);
      const auto check_equal = [&reference](const QueryResult& result) {
        CUBRICK_CHECK(result.num_groups() == reference.num_groups());
        for (const auto& [key, states] : reference.groups()) {
          CUBRICK_CHECK(result.Value(key, 0, AggSpec::Fn::kSum) ==
                        states[0].Finalize(AggSpec::Fn::kSum));
          CUBRICK_CHECK(result.Value(key, 1, AggSpec::Fn::kCount) ==
                        states[1].Finalize(AggSpec::Fn::kCount));
        }
      };
      // Warm the cache, then verify a parallel cached scan also reproduces
      // the uncached serial answer bit-for-bit (integer metrics: double
      // aggregation is exact, so merge order cannot matter).
      check_equal(table->Scan(ro.snapshot(), ScanMode::kSnapshotIsolation, q,
                              nullptr, 1, /*visibility_cache=*/true));
      check_equal(table->Scan(ro.snapshot(), ScanMode::kSnapshotIsolation, q,
                              nullptr, 4, /*visibility_cache=*/true));

      obs::LatencyRecorder cached_rec, uncached_rec, ru_rec;
      for (int i = 0; i < kReps; ++i) {
        Stopwatch t1;
        const QueryResult cached =
            table->Scan(ro.snapshot(), ScanMode::kSnapshotIsolation, q,
                        nullptr, 1, /*visibility_cache=*/true);
        cached_rec.Record(t1.ElapsedMicros());
        Stopwatch t2;
        const QueryResult uncached =
            table->Scan(ro.snapshot(), ScanMode::kSnapshotIsolation, q,
                        nullptr, 1, /*visibility_cache=*/false);
        uncached_rec.Record(t2.ElapsedMicros());
        Stopwatch t3;
        CUBRICK_CHECK(
            !table
                 ->Scan(ro.snapshot(), ScanMode::kReadUncommitted, q, nullptr,
                        1, /*visibility_cache=*/true)
                 .empty());
        ru_rec.Record(t3.ElapsedMicros());
        check_equal(cached);
        check_equal(uncached);
      }
      db.txns().EndReadOnly(ro);
      cached_p50 = static_cast<double>(cached_rec.Percentile(50));
      uncached_p50 = static_cast<double>(uncached_rec.Percentile(50));
      ru_p50 = static_cast<double>(ru_rec.Percentile(50));
      std::printf("%8" PRIu64 " %14.0f %16.0f %12.0f %9.2f%%\n", txns,
                  cached_p50, uncached_p50, ru_p50,
                  ru_p50 == 0 ? 0.0
                              : 100.0 * (cached_p50 - ru_p50) / ru_p50);
      std::fflush(stdout);
    }
    // Headline numbers from the deepest history (10000 txns), where the
    // uncached bitmap build is most expensive and the cache matters most.
    EmitBenchJson(
        "fig9_cache",
        {{"si_cached_p50_us", cached_p50},
         {"si_uncached_p50_us", uncached_p50},
         {"ru_p50_us", ru_p50},
         {"cached_overhead_vs_ru",
          ru_p50 == 0 ? 0.0 : (cached_p50 - ru_p50) / ru_p50},
         {"cache_speedup",
          cached_p50 == 0 ? 0.0 : uncached_p50 / cached_p50}});
  }

  // Online-checker overhead sweep: the same SI aggregation, checker off vs
  // on at full sampling (every scan observed, validated on the background
  // thread). The checker-on cost per sampled scan is one history decode
  // plus two bitmap popcount passes — cheap next to the aggregation kernel
  // — so the headline overhead must stay within noise of zero;
  // scripts/check_bench_baseline.py fails CI when it exceeds 5%.
  {
    const uint64_t kTxns = 1000;
    const int kOverheadReps = 31;
    const auto build = [&](bool online) {
      DatabaseOptions options;
      options.online_check = online;
      auto db = std::make_unique<Database>(options);
      CUBRICK_CHECK(CreateSingleColumnCube(db.get(), "t").ok());
      Random rng(7);
      for (uint64_t t = 0; t < kTxns; ++t) {
        CUBRICK_CHECK(
            db->Load("t", SingleColumnBatch(&rng, kRows / kTxns)).ok());
      }
      return db;
    };
    auto db_off = build(false);
    auto db_on = build(true);
    check::OnlineChecker* checker = db_on->online_checker();
    const cubrick::Query q = AggregationQuery();
    // Interleave the two sides rep by rep: the checker hook is
    // process-global, so it is uninstalled for every checker-off rep (or
    // db_off's scans would be sampled too), and both medians see the same
    // machine conditions — measuring the halves back to back lets minutes
    // of container drift masquerade as checker overhead. The toggling
    // happens outside the timed region.
    obs::LatencyRecorder rec_off;
    obs::LatencyRecorder rec_on;
    checker->Uninstall();
    (void)db_off->Query("t", q, ScanMode::kSnapshotIsolation);  // warm-up
    checker->Install();
    (void)db_on->Query("t", q, ScanMode::kSnapshotIsolation);  // warm-up
    for (int i = 0; i < kOverheadReps; ++i) {
      checker->Uninstall();
      {
        Stopwatch timer;
        CUBRICK_CHECK(db_off->Query("t", q, ScanMode::kSnapshotIsolation).ok());
        rec_off.Record(timer.ElapsedMicros());
      }
      checker->Install();
      {
        Stopwatch timer;
        CUBRICK_CHECK(db_on->Query("t", q, ScanMode::kSnapshotIsolation).ok());
        rec_on.Record(timer.ElapsedMicros());
      }
    }
    // Final drain, so the registry snapshot below reflects every sample.
    checker->Uninstall();
    const double off_p50 = static_cast<double>(rec_off.Percentile(50));
    const double on_p50 = static_cast<double>(rec_on.Percentile(50));
    const double overhead_pct =
        off_p50 == 0 ? 0.0 : 100.0 * (on_p50 - off_p50) / off_p50;
    std::printf(
        "\nOnline-checker overhead (%" PRIu64 " txns, full sampling): "
        "off p50 %.0f us, on p50 %.0f us, overhead %.2f%%\n",
        kTxns, off_p50, on_p50, overhead_pct);
    EmitBenchJson("fig9_online_check",
                  {{"checker_off_p50_us", off_p50},
                   {"checker_on_p50_us", on_p50},
                   {"overhead_pct", overhead_pct}});
  }

  // Purge-pause sweep: the §III-C4 compaction pause, quiescent vs concurrent,
  // with a scan thread live the whole time. Quiescent mode occupies every
  // shard for the full round, so `aosi.purge.pause_us` records one pause the
  // length of the round; the phased concurrent pipeline does its O(bytes)
  // copy and plan off-shard and records only the short shard-occupancy
  // slices scans actually wait behind. The headline is the p99 of that
  // histogram per mode — the flattening scripts/check_bench_baseline.py
  // gates on (skipped on single-core / sanitizer builds, like the morsel
  // scaling floor).
  {
    const uint64_t kTxns = 512;
    const int kPurgeRounds = 8;
    struct ModeResult {
      double pause_p50_us = 0.0;
      double pause_p99_us = 0.0;
      double scan_p99_us = 0.0;
    };
    const auto run_mode = [&](PurgeMode mode) {
      Database db;
      CUBRICK_CHECK(CreateSingleColumnCube(&db, "t").ok());
      Random rng(7);
      for (uint64_t t = 0; t < kTxns; ++t) {
        CUBRICK_CHECK(db.Load("t", SingleColumnBatch(&rng, kRows / kTxns)).ok());
      }
      obs::Histogram* pause =
          obs::MetricsRegistry::Global().GetHistogram("aosi.purge.pause_us");
      pause->ResetForTest();
      std::atomic<bool> stop{false};
      obs::LatencyRecorder scan_rec;
      std::thread scanner([&db, &stop, &scan_rec] {
        const cubrick::Query q = AggregationQuery();
        while (!stop.load(std::memory_order_acquire)) {
          Stopwatch timer;
          CUBRICK_CHECK(db.Query("t", q, ScanMode::kSnapshotIsolation).ok());
          scan_rec.Record(timer.ElapsedMicros());
        }
      });
      // Each round reloads a slice of fresh history so every purge has real
      // compaction to do (round 1 reclaims the deep initial history; later
      // rounds the reload's worth).
      for (int r = 0; r < kPurgeRounds; ++r) {
        CUBRICK_CHECK(db.Load("t", SingleColumnBatch(&rng, kRows / kTxns)).ok());
        db.txns().TryAdvanceLSE(db.txns().LCE());
        db.PurgeAll(mode);
      }
      stop.store(true, std::memory_order_release);
      scanner.join();
      const obs::HistogramSnapshot snap = pause->Read();
      ModeResult out;
      out.pause_p50_us = static_cast<double>(snap.Percentile(50));
      out.pause_p99_us = static_cast<double>(snap.Percentile(99));
      out.scan_p99_us = static_cast<double>(scan_rec.Percentile(99));
      return out;
    };
    const ModeResult quiescent = run_mode(PurgeMode::kQuiescent);
    const ModeResult concurrent = run_mode(PurgeMode::kConcurrent);
    std::printf(
        "\nPurge pause with scans live (%d rounds): quiescent pause p99 "
        "%.0f us (scan p99 %.0f us), concurrent pause p99 %.0f us "
        "(scan p99 %.0f us)\n",
        kPurgeRounds, quiescent.pause_p99_us, quiescent.scan_p99_us,
        concurrent.pause_p99_us, concurrent.scan_p99_us);
    EmitBenchJson(
        "fig9_purge_pause",
        {{"quiescent_pause_p50_us", quiescent.pause_p50_us},
         {"quiescent_pause_p99_us", quiescent.pause_p99_us},
         {"quiescent_scan_p99_us", quiescent.scan_p99_us},
         {"concurrent_pause_p50_us", concurrent.pause_p50_us},
         {"concurrent_pause_p99_us", concurrent.pause_p99_us},
         {"concurrent_scan_p99_us", concurrent.scan_p99_us},
         {"pause_p99_ratio",
          quiescent.pause_p99_us == 0
              ? 0.0
              : concurrent.pause_p99_us / quiescent.pause_p99_us}});
  }

  // SIMD kernel sweep (DESIGN.md §4e): the same scans with the scalar
  // backend vs the best backend this CPU supports, interleaved rep by rep
  // (like the online-check sweep: back-to-back halves would let container
  // drift masquerade as speedup; the backend toggle happens outside the
  // timed region). Two query shapes: an ungrouped multi-agg fold over the
  // wide cube (the per-word typed fold kernels) and the same with a
  // partial-coverage range filter (the compare-to-bitmask filter kernel).
  // Every rep asserts the two backends' results are identical — the
  // fold-order contract at bench scale. scripts/check_bench_baseline.py
  // gates simd_speedup >= 1.3x behind the machine stamp (>= 2 cores, no
  // sanitizer, simd_backend != scalar).
  {
    const simd::Backend native = simd::Detect();
    Database db;
    CUBRICK_CHECK(CreateWideCube(&db, "w").ok());
    Random rng(7);
    for (int t = 0; t < 8; ++t) {
      CUBRICK_CHECK(db.Load("w", WideBatch(&rng, kRows / 8)).ok());
    }
    cubrick::Query fold_q;
    fold_q.aggs = {{AggSpec::Fn::kSum, 0},  {AggSpec::Fn::kMin, 0},
                   {AggSpec::Fn::kMax, 0},  {AggSpec::Fn::kSum, 30},
                   {AggSpec::Fn::kMin, 30}, {AggSpec::Fn::kMax, 30},
                   {AggSpec::Fn::kCount, 0}};
    cubrick::Query filter_q = fold_q;
    FilterClause channel;
    channel.dim = 2;  // card 8, one range: never covered, never pruned
    channel.op = FilterClause::Op::kRange;
    channel.range_lo = 1;
    channel.range_hi = 6;
    filter_q.filters = {channel};

    const auto run = [&db](const cubrick::Query& q) {
      auto result = db.Query("w", q, ScanMode::kSnapshotIsolation);
      CUBRICK_CHECK(result.ok());
      return std::move(result).value();
    };
    const auto expect_same = [](const QueryResult& a, const QueryResult& b) {
      CUBRICK_CHECK(a.num_groups() == b.num_groups());
      for (const auto& [key, states] : a.groups()) {
        const auto& other = b.groups().at(key);
        for (size_t i = 0; i < states.size(); ++i) {
          CUBRICK_CHECK(states[i].sum == other[i].sum);
          CUBRICK_CHECK(states[i].count == other[i].count);
          CUBRICK_CHECK(states[i].min == other[i].min);
          CUBRICK_CHECK(states[i].max == other[i].max);
        }
      }
    };

    CUBRICK_CHECK(simd::SetBackend(simd::Backend::kScalar));
    const QueryResult ref_fold = run(fold_q);  // warm-up + reference
    const QueryResult ref_filter = run(filter_q);
    CUBRICK_CHECK(simd::SetBackend(native));
    expect_same(ref_fold, run(fold_q));  // warm-up + cross-backend identity
    expect_same(ref_filter, run(filter_q));

    obs::LatencyRecorder scalar_fold, simd_fold, scalar_filter, simd_filter;
    for (int i = 0; i < kReps; ++i) {
      CUBRICK_CHECK(simd::SetBackend(simd::Backend::kScalar));
      {
        Stopwatch timer;
        const QueryResult r = run(fold_q);
        scalar_fold.Record(timer.ElapsedMicros());
        expect_same(ref_fold, r);
      }
      {
        Stopwatch timer;
        const QueryResult r = run(filter_q);
        scalar_filter.Record(timer.ElapsedMicros());
        expect_same(ref_filter, r);
      }
      CUBRICK_CHECK(simd::SetBackend(native));
      {
        Stopwatch timer;
        const QueryResult r = run(fold_q);
        simd_fold.Record(timer.ElapsedMicros());
        expect_same(ref_fold, r);
      }
      {
        Stopwatch timer;
        const QueryResult r = run(filter_q);
        simd_filter.Record(timer.ElapsedMicros());
        expect_same(ref_filter, r);
      }
    }
    const double scalar_p50 = static_cast<double>(scalar_fold.Percentile(50));
    const double simd_p50 = static_cast<double>(simd_fold.Percentile(50));
    const double scalar_filter_p50 =
        static_cast<double>(scalar_filter.Percentile(50));
    const double simd_filter_p50 =
        static_cast<double>(simd_filter.Percentile(50));
    std::printf(
        "\nSIMD kernels (%s vs scalar, %" PRIu64 " rows): fold p50 "
        "%.0f -> %.0f us (%.2fx), filtered fold p50 %.0f -> %.0f us "
        "(%.2fx)\n",
        simd::BackendName(native), kRows, scalar_p50, simd_p50,
        simd_p50 == 0 ? 0.0 : scalar_p50 / simd_p50, scalar_filter_p50,
        simd_filter_p50,
        simd_filter_p50 == 0 ? 0.0 : scalar_filter_p50 / simd_filter_p50);
    // Emitted with the native backend active, so the machine stamp's
    // simd_backend field records what "simd" meant on this runner.
    EmitBenchJson(
        "fig9_simd",
        {{"scalar_p50_us", scalar_p50},
         {"simd_p50_us", simd_p50},
         {"simd_speedup", simd_p50 == 0 ? 0.0 : scalar_p50 / simd_p50},
         {"scalar_filter_p50_us", scalar_filter_p50},
         {"simd_filter_p50_us", simd_filter_p50},
         {"filter_speedup",
          simd_filter_p50 == 0 ? 0.0 : scalar_filter_p50 / simd_filter_p50}});
  }
  return 0;
}
