// Figure 6 — Memory overhead of AOSI on a single-column dataset.
//
// Paper setup: a Cubrick load job ingesting ~100M single-column rows from
// Hive with 4 parallel clients issuing 5000-row batches, one implicit
// transaction per request, on a 1-node cluster. Plotted over time: number
// of records, dataset size, AOSI overhead (epochs vectors) and the baseline
// overhead of a traditional MVCC scheme (two 8-byte timestamps per record,
// i.e. 16 * num_records). Mid-run, LSE advances and purge recycles epochs
// entries, collapsing the AOSI overhead.
//
// This driver reproduces the same series at laptop scale (default 2M rows;
// scale with CUBRICK_BENCH_SCALE). The expected *shape*: baseline overhead
// grows linearly with records (ending >= dataset size for 1 column — the
// §II-A "doubles the memory" worst case), while AOSI overhead tracks the
// number of transactions and drops by orders of magnitude at each purge.

#include <atomic>
#include <cinttypes>
#include <thread>

#include "bench_common.h"
#include "common/stopwatch.h"

using namespace cubrick;
using namespace cubrick::bench;

int main() {
  InitBenchObs();
  const uint64_t kTotalRows = Scaled(2'000'000);
  const uint64_t kBatchRows = 5000;
  const int kClients = 4;
  const uint64_t kBatches = kTotalRows / kBatchRows;

  DatabaseOptions options;
  options.shards_per_cube = 2;
  options.threaded_shards = true;
  Database db(options);
  CUBRICK_CHECK(CreateSingleColumnCube(&db, "hive_import").ok());

  std::printf("Figure 6: AOSI memory overhead, single-column dataset\n");
  std::printf(
      "(4 clients, %" PRIu64 "-row batches, one implicit txn per batch, "
      "%" PRIu64 " rows total)\n\n",
      kBatchRows, kTotalRows);
  std::printf("%10s %12s %14s %16s %18s %9s\n", "time_ms", "records",
              "dataset", "aosi_overhead", "baseline_mvcc(16B)", "ratio");

  std::atomic<int64_t> batches_left{static_cast<int64_t>(kBatches)};
  std::atomic<bool> done{false};

  auto client = [&](uint64_t seed) {
    Random rng(seed);
    while (batches_left.fetch_sub(1, std::memory_order_relaxed) > 0) {
      auto batch = SingleColumnBatch(&rng, kBatchRows);
      CUBRICK_CHECK(db.Load("hive_import", batch).ok());
    }
  };

  Stopwatch clock;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back(client, 1000 + c);
  }

  // Sampler thread: print the Fig 6 series while the load runs; trigger the
  // mid-run purge (LSE advance) at ~60% progress, as in the paper.
  bool purged_midway = false;
  auto sample = [&](const char* tag) {
    const uint64_t records = db.TotalRecords();
    const size_t dataset = db.DataMemoryUsage();
    const size_t aosi = db.HistoryMemoryUsage();
    const uint64_t baseline = records * 16;
    std::printf("%10.0f %12" PRIu64 " %14s %16s %18s %8.4f%% %s\n",
                clock.ElapsedMillis(), records,
                HumanBytes(static_cast<double>(dataset)).c_str(),
                HumanBytes(static_cast<double>(aosi)).c_str(),
                HumanBytes(static_cast<double>(baseline)).c_str(),
                dataset == 0 ? 0.0
                             : 100.0 * static_cast<double>(aosi) /
                                   static_cast<double>(dataset),
                tag);
    std::fflush(stdout);
  };

  std::thread sampler([&] {
    while (!done.load(std::memory_order_seq_cst)) {
      sample("");
      const uint64_t records = db.TotalRecords();
      if (!purged_midway && records > kTotalRows * 6 / 10) {
        purged_midway = true;
        db.txns().TryAdvanceLSE(db.txns().LCE());
        db.PurgeAll();
        sample("<- purge (LSE advanced)");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  });

  for (auto& c : clients) c.join();
  done.store(true, std::memory_order_seq_cst);
  sampler.join();

  sample("<- load finished");
  // Final LSE advance + purge: epochs entries recycle down to one per brick.
  db.txns().TryAdvanceLSE(db.txns().LCE());
  db.PurgeAll();
  sample("<- final purge");

  const uint64_t records = db.TotalRecords();
  const size_t aosi = db.HistoryMemoryUsage();
  const uint64_t baseline = records * 16;
  std::printf(
      "\nFinal: AOSI overhead %s vs MVCC baseline %s (%.0fx smaller); "
      "dataset %s\n",
      HumanBytes(static_cast<double>(aosi)).c_str(),
      HumanBytes(static_cast<double>(baseline)).c_str(),
      static_cast<double>(baseline) / static_cast<double>(aosi),
      HumanBytes(static_cast<double>(db.DataMemoryUsage())).c_str());
  EmitBenchJson("fig6",
                {{"records", static_cast<double>(records)},
                 {"aosi_overhead_bytes", static_cast<double>(aosi)},
                 {"mvcc_baseline_bytes", static_cast<double>(baseline)},
                 {"dataset_bytes",
                  static_cast<double>(db.DataMemoryUsage())}});
  return 0;
}
