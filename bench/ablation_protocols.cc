// Ablation — AOSI vs MVCC vs 2PL (google-benchmark).
//
// Quantifies the §II design argument: dropping record updates and single
// record deletes buys (a) appends without per-record timestamp writes,
// (b) scans whose concurrency-control cost is per-transaction-range, not
// per-record, and (c) readers that never block writers.
//
// To isolate the concurrency-control cost, the scan benchmarks use the same
// tight sum loop on all three substrates; only the visibility mechanism
// differs (range bitmap vs per-record timestamps vs locks). Engine-level
// numbers (parse + shard dispatch + generic aggregation) are measured
// separately in fig8/fig9.

#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>

#include "aosi/visibility.h"
#include "bench_common.h"
#include "engine/table.h"
#include "mvcc/mvcc_store.h"
#include "mvcc/two_pl_store.h"

using namespace cubrick;
using namespace cubrick::bench;

namespace {

constexpr uint64_t kBatch = 1000;
constexpr uint64_t kScanRows = 100'000;
constexpr uint64_t kScanTxns = 100;

std::shared_ptr<const CubeSchema> RawSchema() {
  return CubeSchema::Make("t", {{"k", 16, 1, false}},
                          {{"v", DataType::kInt64}})
      .value();
}

PerBrickBatches EncodedRows(const CubeSchema& schema, Random* rng,
                            uint64_t rows) {
  std::vector<Record> records;
  records.reserve(rows);
  for (uint64_t i = 0; i < rows; ++i) {
    records.push_back({static_cast<int64_t>(rng->Uniform(16)),
                       static_cast<int64_t>(rng->Next() & 0xffffff)});
  }
  return ParseRecords(schema, records).value().batches;
}

// --- Append throughput (parse excluded everywhere) --------------------------

void BM_Append_AOSI(benchmark::State& state) {
  auto schema = RawSchema();
  Table table(schema, 1, /*threaded=*/false);
  Random rng(1);
  const PerBrickBatches batches = EncodedRows(*schema, &rng, kBatch);
  aosi::TxnManager tm;
  for (auto _ : state) {
    // Append consumes its batches; re-copy the encoded payload each round.
    PerBrickBatches round = batches;
    aosi::Txn txn = tm.BeginReadWrite();
    CUBRICK_CHECK(table.Append(txn.epoch, std::move(round)).ok());
    CUBRICK_CHECK(tm.Commit(txn).ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kBatch));
}
BENCHMARK(BM_Append_AOSI);

void BM_Append_MVCC(benchmark::State& state) {
  mvcc::MvccStore store(2);
  Random rng(1);
  std::vector<std::vector<int64_t>> rows;
  for (uint64_t i = 0; i < kBatch; ++i) {
    rows.push_back({static_cast<int64_t>(rng.Uniform(16)),
                    static_cast<int64_t>(rng.Next() & 0xffffff)});
  }
  for (auto _ : state) {
    auto txn = store.Begin();
    for (const auto& row : rows) {
      CUBRICK_CHECK(store.Insert(&txn, row).ok());
    }
    CUBRICK_CHECK(store.Commit(&txn).ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kBatch));
}
BENCHMARK(BM_Append_MVCC);

void BM_Append_2PL(benchmark::State& state) {
  mvcc::TwoPLStore store(2, 16);
  Random rng(1);
  std::vector<std::vector<int64_t>> rows;
  for (uint64_t i = 0; i < kBatch; ++i) {
    rows.push_back({static_cast<int64_t>(rng.Uniform(16)),
                    static_cast<int64_t>(rng.Next() & 0xffffff)});
  }
  for (auto _ : state) {
    auto txn = store.Begin();
    for (const auto& row : rows) {
      CUBRICK_CHECK(store.Insert(&txn, row).ok());
    }
    CUBRICK_CHECK(store.Commit(&txn).ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kBatch));
}
BENCHMARK(BM_Append_2PL);

// --- Scan: same tight sum loop, different visibility mechanisms -------------

void BM_ScanCC_AOSI_Bitmap(benchmark::State& state) {
  auto schema = RawSchema();
  Table table(schema, 1, /*threaded=*/false);
  Random rng(2);
  aosi::TxnManager tm;
  for (uint64_t t = 0; t < kScanTxns; ++t) {
    aosi::Txn txn = tm.BeginReadWrite();
    CUBRICK_CHECK(
        table.Append(txn.epoch,
                     EncodedRows(*schema, &rng, kScanRows / kScanTxns))
            .ok());
    CUBRICK_CHECK(tm.Commit(txn).ok());
  }
  for (auto _ : state) {
    aosi::Txn reader = tm.BeginReadOnly();
    int64_t sum = 0;
    table.shard(0).bricks().ForEach([&](const Brick& brick) {
      // Range-based visibility: one bitmap per brick, then a branch-free
      // walk of the set bits.
      Bitmap visible =
          aosi::BuildVisibilityBitmap(brick.history(), reader.snapshot());
      const auto& ints = brick.metric(0).ints();
      visible.ForEachSet([&](size_t row) { sum += ints[row]; });
    });
    benchmark::DoNotOptimize(sum);
    tm.EndReadOnly(reader);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * kScanRows));
}
BENCHMARK(BM_ScanCC_AOSI_Bitmap);

void BM_ScanCC_MVCC_Timestamps(benchmark::State& state) {
  mvcc::MvccStore store(2);
  Random rng(2);
  for (uint64_t t = 0; t < kScanTxns; ++t) {
    auto txn = store.Begin();
    for (uint64_t i = 0; i < kScanRows / kScanTxns; ++i) {
      CUBRICK_CHECK(
          store
              .Insert(&txn, {static_cast<int64_t>(rng.Uniform(16)),
                             static_cast<int64_t>(rng.Next() & 0xffffff)})
              .ok());
    }
    CUBRICK_CHECK(store.Commit(&txn).ok());
  }
  for (auto _ : state) {
    auto probe = store.Begin();
    // Per-record begin/end timestamp test on every row.
    benchmark::DoNotOptimize(store.ScanSum(probe.begin_ts, 1));
    CUBRICK_CHECK(store.Commit(&probe).ok());
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * kScanRows));
}
BENCHMARK(BM_ScanCC_MVCC_Timestamps);

void BM_ScanCC_2PL_Locked(benchmark::State& state) {
  mvcc::TwoPLStore store(2, 16);
  Random rng(2);
  {
    auto txn = store.Begin();
    for (uint64_t i = 0; i < kScanRows; ++i) {
      CUBRICK_CHECK(
          store
              .Insert(&txn, {static_cast<int64_t>(rng.Uniform(16)),
                             static_cast<int64_t>(rng.Next() & 0xffffff)})
              .ok());
    }
    CUBRICK_CHECK(store.Commit(&txn).ok());
  }
  for (auto _ : state) {
    auto txn = store.Begin();
    benchmark::DoNotOptimize(store.ScanSum(&txn, 1));
    CUBRICK_CHECK(store.Commit(&txn).ok());
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * kScanRows));
}
BENCHMARK(BM_ScanCC_2PL_Locked);

// --- Reader latency under a concurrent writer ------------------------------
// AOSI is lock-free: a reader's snapshot never blocks or aborts.
// 2PL (wait-die): the read retries until its S locks win; we measure the
// time to a *successful* read including retries.

void BM_ReadWhileWriting_AOSI(benchmark::State& state) {
  DatabaseOptions options;
  options.threaded_shards = true;
  Database db(options);
  CUBRICK_CHECK(CreateSingleColumnCube(&db, "t").ok());
  Random rng(3);
  CUBRICK_CHECK(db.Load("t", SingleColumnBatch(&rng, 50'000)).ok());
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Random wrng(4);
    while (!stop.load(std::memory_order_seq_cst)) {
      CUBRICK_CHECK(db.Load("t", SingleColumnBatch(&wrng, 500)).ok());
    }
  });
  const cubrick::Query q = AggregationQuery(false);
  for (auto _ : state) {
    auto result = db.Query("t", q, ScanMode::kSnapshotIsolation);
    benchmark::DoNotOptimize(result);
  }
  stop.store(true, std::memory_order_seq_cst);
  writer.join();
  state.counters["retries"] = 0;  // lock-free: reads never retry
}
BENCHMARK(BM_ReadWhileWriting_AOSI)->Unit(benchmark::kMicrosecond);

void BM_ReadWhileWriting_2PL(benchmark::State& state) {
  mvcc::TwoPLStore store(2, 4);
  Random rng(3);
  {
    auto txn = store.Begin();
    for (uint64_t i = 0; i < 50'000; ++i) {
      CUBRICK_CHECK(
          store
              .Insert(&txn, {static_cast<int64_t>(rng.Uniform(16)),
                             static_cast<int64_t>(rng.Next() & 0xffffff)})
              .ok());
    }
    CUBRICK_CHECK(store.Commit(&txn).ok());
  }
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Random wrng(4);
    while (!stop.load(std::memory_order_seq_cst)) {
      auto txn = store.Begin();
      bool ok = true;
      for (int i = 0; i < 500 && ok; ++i) {
        ok = store
                 .Insert(&txn, {static_cast<int64_t>(wrng.Uniform(16)),
                                static_cast<int64_t>(wrng.Next() & 0xffff)})
                 .ok();
      }
      CUBRICK_CHECK((ok ? store.Commit(&txn) : store.Abort(&txn)).ok());
    }
  });
  int64_t retries = 0;
  for (auto _ : state) {
    // Retry until the read commits: wait-die may kill it repeatedly while
    // the writer holds partition locks.
    while (true) {
      auto txn = store.Begin();
      auto sum = store.ScanSum(&txn, 1);
      if (sum.ok()) {
        benchmark::DoNotOptimize(*sum);
        CUBRICK_CHECK(store.Commit(&txn).ok());
        break;
      }
      ++retries;
      CUBRICK_CHECK(store.Abort(&txn).ok());
    }
  }
  stop.store(true, std::memory_order_seq_cst);
  writer.join();
  state.counters["retries"] = static_cast<double>(retries);
}
BENCHMARK(BM_ReadWhileWriting_2PL)->Unit(benchmark::kMicrosecond);

// --- Memory overhead side-by-side ------------------------------------------

void BM_MemoryOverhead(benchmark::State& state) {
  for (auto _ : state) {
    Database db;
    CUBRICK_CHECK(CreateSingleColumnCube(&db, "t").ok());
    Random rng(5);
    for (int t = 0; t < 20; ++t) {
      CUBRICK_CHECK(db.Load("t", SingleColumnBatch(&rng, 5000)).ok());
    }
    mvcc::MvccStore mvcc_store(2);
    auto txn = mvcc_store.Begin();
    for (int i = 0; i < 100'000; ++i) {
      CUBRICK_CHECK(mvcc_store.Insert(&txn, {1, 2}).ok());
    }
    CUBRICK_CHECK(mvcc_store.Commit(&txn).ok());
    state.counters["aosi_bytes"] =
        static_cast<double>(db.HistoryMemoryUsage());
    state.counters["mvcc_bytes"] =
        static_cast<double>(mvcc_store.TimestampOverhead());
  }
}
BENCHMARK(BM_MemoryOverhead)->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
