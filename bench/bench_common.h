// Shared workload generators and reporting helpers for the experiment
// drivers in bench/. Each fig*_ binary regenerates one table/figure of the
// paper (see DESIGN.md §4 and EXPERIMENTS.md); scale knobs default to
// CI-friendly sizes and can be raised with CUBRICK_BENCH_SCALE=<multiplier>.

#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/simd.h"
#include "cubrick/database.h"
#include "ingest/parser.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/percentile.h"

namespace cubrick::bench {

/// CUBRICK_OBS_DISABLE=1 turns every instrument write into an untaken
/// branch, so the same binary measures the uninstrumented baseline for
/// overhead comparisons (docs/OBSERVABILITY.md). Call first in main().
inline void InitBenchObs() {
  const char* env = std::getenv("CUBRICK_OBS_DISABLE");
  if (env != nullptr && env[0] == '1') obs::SetEnabled(false);
}

/// Scale multiplier from the environment (default 1.0). A malformed or
/// non-positive CUBRICK_BENCH_SCALE aborts the run instead of silently
/// falling back to 1.0 — a typo'd scale in CI would otherwise run the
/// seed-size workload and quietly pass the baseline gate at the wrong scale.
inline double ScaleFactor() {
  const char* env = std::getenv("CUBRICK_BENCH_SCALE");
  if (env == nullptr || env[0] == '\0') return 1.0;
  char* end = nullptr;
  const double v = std::strtod(env, &end);
  if (end == env || *end != '\0' || !(v > 0)) {
    std::fprintf(stderr,
                 "bench: CUBRICK_BENCH_SCALE=\"%s\" is not a positive "
                 "number; refusing to guess a scale\n",
                 env);
    std::exit(2);
  }
  return v;
}

inline uint64_t Scaled(uint64_t base) {
  return static_cast<uint64_t>(static_cast<double>(base) * ScaleFactor());
}

/// Pretty-prints a byte count ("1.5 MB").
inline std::string HumanBytes(double bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f %s", bytes, units[u]);
  return buf;
}

inline std::string HumanCount(double n) {
  const char* units[] = {"", "K", "M", "B"};
  int u = 0;
  while (n >= 1000.0 && u < 3) {
    n /= 1000.0;
    ++u;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f%s", n, units[u]);
  return buf;
}

/// The paper's single-column worst case (§VI-A, Fig 6): most concurrency
/// metadata per byte of data. One 16-way partition-key dimension (zero bess
/// bits) plus one int64 metric.
inline Status CreateSingleColumnCube(Database* db, const std::string& name) {
  return db->CreateCube(name, {{"shard_key", 16, 1, false}},
                        {{"value", DataType::kInt64}});
}

/// Generates one batch for the single-column cube.
inline std::vector<Record> SingleColumnBatch(Random* rng, uint64_t rows) {
  std::vector<Record> records;
  records.reserve(rows);
  for (uint64_t i = 0; i < rows; ++i) {
    records.push_back({static_cast<int64_t>(rng->Uniform(16)),
                       static_cast<int64_t>(rng->Next() & 0xffffff)});
  }
  return records;
}

/// The paper's "typical 40 column dataset" (§VI-A, Fig 7): 4 dimensions and
/// 36 metrics (30 int64 + 6 double).
inline Status CreateWideCube(Database* db, const std::string& name) {
  std::vector<DimensionDef> dims = {
      {"region", 64, 8, false},
      {"product", 256, 32, false},
      {"channel", 8, 8, false},
      {"day", 32, 32, false},
  };
  std::vector<MetricDef> metrics;
  for (int i = 0; i < 30; ++i) {
    metrics.push_back({"m_int_" + std::to_string(i), DataType::kInt64});
  }
  for (int i = 0; i < 6; ++i) {
    metrics.push_back({"m_dbl_" + std::to_string(i), DataType::kDouble});
  }
  return db->CreateCube(name, std::move(dims), std::move(metrics));
}

inline std::vector<Record> WideBatch(Random* rng, uint64_t rows) {
  std::vector<Record> records;
  records.reserve(rows);
  for (uint64_t i = 0; i < rows; ++i) {
    Record r;
    r.values.reserve(40);
    r.values.emplace_back(static_cast<int64_t>(rng->Uniform(64)));
    r.values.emplace_back(static_cast<int64_t>(rng->Uniform(256)));
    r.values.emplace_back(static_cast<int64_t>(rng->Uniform(8)));
    r.values.emplace_back(static_cast<int64_t>(rng->Uniform(32)));
    for (int m = 0; m < 30; ++m) {
      r.values.emplace_back(static_cast<int64_t>(rng->Next() & 0xffff));
    }
    for (int m = 0; m < 6; ++m) {
      r.values.emplace_back(rng->NextDouble() * 100.0);
    }
    records.push_back(std::move(r));
  }
  return records;
}

/// The canonical aggregation query used by the SI-vs-RU experiments: sum +
/// count of the first metric grouped by the first dimension.
inline cubrick::Query AggregationQuery(bool grouped = true) {
  cubrick::Query q;
  if (grouped) q.group_by = {0};
  q.aggs = {{AggSpec::Fn::kSum, 0}, {AggSpec::Fn::kCount, 0}};
  return q;
}

/// Headline numbers a driver wants in its baseline file, in print order.
using BenchHeadline = std::vector<std::pair<std::string, double>>;

/// Sanitizer flavor this binary was compiled with ("none", "thread",
/// "address") — detected from compiler macros so it matches the actual
/// instrumentation, not just the CUBRICK_SANITIZE cache entry.
inline const char* SanitizerFlavor() {
#if defined(__SANITIZE_THREAD__)
  return "thread";
#elif defined(__SANITIZE_ADDRESS__)
  return "address";
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
  return "thread";
#elif __has_feature(address_sanitizer)
  return "address";
#else
  return "none";
#endif
#else
  return "none";
#endif
}

/// Writes the machine-readable baseline for a bench run: the driver's
/// headline numbers plus a full registry snapshot — every counter, gauge
/// and histogram the run touched (docs/OBSERVABILITY.md). Default path is
/// BENCH_<name>.json in the working directory; CUBRICK_BENCH_JSON overrides
/// it. CI parses these with scripts/check_bench_baseline.py.
inline void EmitBenchJson(const std::string& name,
                          const BenchHeadline& headline) {
  const char* env = std::getenv("CUBRICK_BENCH_JSON");
  const std::string path = (env != nullptr && env[0] != '\0')
                               ? std::string(env)
                               : "BENCH_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "EmitBenchJson: cannot open %s for writing\n",
                 path.c_str());
    return;
  }
  // Machine-capability stamp: lets the baseline checker judge numbers in
  // context — multi-thread scaling assertions are meaningless on a box with
  // fewer cores than measured threads, and sanitizer builds run ~2-15x
  // slower than release, so absolute latencies must not be compared across
  // flavors.
  const unsigned cores = std::thread::hardware_concurrency();
  std::fprintf(f,
               "{\n  \"bench\": \"%s\",\n  \"scale\": %g,\n"
               "  \"machine\": {\n    \"cores\": %u,\n"
               "    \"sanitizer\": \"%s\",\n"
               "    \"simd_backend\": \"%s\"\n  },\n  \"headline\": {",
               name.c_str(), ScaleFactor(), cores, SanitizerFlavor(),
               simd::ActiveBackendName());
  bool first = true;
  for (const auto& [key, value] : headline) {
    std::fprintf(f, "%s\n    \"%s\": %g", first ? "" : ",", key.c_str(),
                 value);
    first = false;
  }
  const std::string metrics =
      obs::ExportJson(obs::MetricsRegistry::Global().Snapshot());
  std::fprintf(f, "\n  },\n  \"metrics\": %s\n}\n", metrics.c_str());
  std::fclose(f);
  std::printf("\nBaseline written to %s\n", path.c_str());
}

}  // namespace cubrick::bench
