// Paper traces — regenerates the protocol-example tables and figures
// (Table I, Figures 1-3, Table IV) from live protocol objects, printing
// them in the paper's layout. The exact-value assertions live in the test
// suite; this binary exists so EXPERIMENTS.md can cite reproducible output
// for every table/figure, not only the evaluation charts.

#include <cstdio>

#include "aosi/epoch_clock.h"
#include "aosi/purge.h"
#include "aosi/txn_manager.h"
#include "aosi/visibility.h"

using namespace cubrick;
using namespace cubrick::aosi;

namespace {

void PrintTableI() {
  std::printf("Table I — history of three concurrent RW transactions\n");
  std::printf("%-12s %4s %4s %-14s %-8s %-8s %-8s\n", "action", "EC", "LCE",
              "pendingTxs", "T1.deps", "T2.deps", "T3.deps");
  TxnManager tm;
  auto row = [&](const char* action, const Txn* t1, const Txn* t2,
                 const Txn* t3) {
    std::printf("%-12s %4llu %4llu %-14s %-8s %-8s %-8s\n", action,
                static_cast<unsigned long long>(tm.EC()),
                static_cast<unsigned long long>(tm.LCE()),
                tm.PendingTxs().ToString().c_str(),
                t1 ? t1->deps.ToString().c_str() : "-",
                t2 ? t2->deps.ToString().c_str() : "-",
                t3 ? t3->deps.ToString().c_str() : "-");
  };
  Txn t1 = tm.BeginReadWrite();
  row("start T1", &t1, nullptr, nullptr);
  Txn t2 = tm.BeginReadWrite();
  row("start T2", &t1, &t2, nullptr);
  Txn t3 = tm.BeginReadWrite();
  row("start T3", &t1, &t2, &t3);
  CUBRICK_CHECK(tm.Commit(t1).ok());
  row("commit T1", &t1, &t2, &t3);
  CUBRICK_CHECK(tm.Commit(t3).ok());
  row("commit T3", &t1, &t2, &t3);
  CUBRICK_CHECK(tm.Commit(t2).ok());
  row("commit T2", &t1, &t2, &t3);
  std::printf("\n");
}

void PrintFigure1() {
  std::printf("Figure 1 — interleaved appends by T1 and T2\n");
  EpochVector ev;
  ev.RecordAppend(1, 3);
  std::printf("(a) T1 appends 3:     %s\n", ev.ToString().c_str());
  ev.RecordAppend(1, 2);
  std::printf("(b) T1 appends 2:     %s   (back entry extended)\n",
              ev.ToString().c_str());
  ev.RecordAppend(2, 4);
  std::printf("(c) T2 appends 4:     %s\n", ev.ToString().c_str());
  ev.RecordAppend(1, 4);
  std::printf("(d) T1 appends 4:     %s   (new entry: T1 not at back)\n\n",
              ev.ToString().c_str());
}

EpochVector Fig2a() {
  EpochVector ev;
  ev.RecordAppend(1, 2);
  ev.RecordAppend(3, 2);
  ev.RecordAppend(5, 1);
  ev.RecordDelete(3);
  ev.RecordAppend(5, 3);
  ev.RecordAppend(7, 1);
  return ev;
}

void PrintFigure2AndTableIII() {
  std::printf(
      "Figure 2 / Table III — delete markers and read-txn bitmaps\n"
      "(sequence: T1+2, T3+2, T5+1, T3 deletes, T5+3, T7+1; the source\n"
      " text's exact table is OCR-corrupted, values derive from the\n"
      " §III-C3 rules — see DESIGN.md)\n");
  EpochVector ev = Fig2a();
  std::printf("epochs vector: %s\n", ev.ToString().c_str());
  for (Epoch reader : {Epoch{2}, Epoch{4}, Epoch{6}, Epoch{8}}) {
    Snapshot snap{reader, {}};
    std::printf("  read tx %llu sees: %s\n",
                static_cast<unsigned long long>(reader),
                BuildVisibilityBitmap(ev, snap).ToString().c_str());
  }
  std::printf("\n");
}

void PrintFigure3() {
  std::printf("Figure 3 — purge at different LSE values\n");
  EpochVector ev;
  ev.RecordAppend(1, 2);
  ev.RecordAppend(2, 2);
  ev.RecordAppend(5, 1);
  ev.RecordDelete(3);
  ev.RecordAppend(5, 3);
  ev.RecordAppend(7, 1);
  std::printf("before:        %s\n", ev.ToString().c_str());
  auto at3 = PlanPurge(ev, 3);
  std::printf("purge LSE=3:   %s   (T1/T2 merged; delete not applicable)\n",
              at3.new_history.ToString().c_str());
  auto at5 = PlanPurge(ev, 5);
  std::printf("purge LSE=5:   %s   (delete applied, old rows dropped)\n",
              at5.new_history.ToString().c_str());
  EpochVector fig3b;
  fig3b.RecordAppend(1, 2);
  fig3b.RecordAppend(3, 2);
  fig3b.RecordAppend(5, 1);
  fig3b.RecordDelete(5);
  fig3b.RecordAppend(7, 1);
  auto only7 = PlanPurge(fig3b, 7);
  std::printf("Fig 3(b) case: %s   (only T7's record & entry survive)\n\n",
              only7.new_history.ToString().c_str());
}

void PrintTableIV() {
  std::printf("Table IV — epoch clocks advancing on a 3-node cluster\n");
  EpochClock n1(1, 3), n2(2, 3), n3(3, 3);
  auto row = [&](const char* event) {
    std::printf("%-18s %4llu %4llu %4llu\n", event,
                static_cast<unsigned long long>(n1.Peek()),
                static_cast<unsigned long long>(n2.Peek()),
                static_cast<unsigned long long>(n3.Peek()));
  };
  std::printf("%-18s %4s %4s %4s\n", "event", "n1", "n2", "n3");
  row("-");
  const Epoch t1 = n1.Acquire();
  row("create(n1) -> T1");
  n2.Observe(n1.Peek());
  n3.Observe(n1.Peek());
  row("append(T1)");
  (void)n3.Acquire();
  row("create(n3) -> T6");
  (void)n2.Acquire();
  row("create(n2) -> T5");
  n2.Observe(n1.Peek());
  n3.Observe(n1.Peek());
  n1.Observe(n2.Peek());
  n1.Observe(n3.Peek());
  row("commit(T1)");
  std::printf("(T1 = epoch %llu)\n\n", static_cast<unsigned long long>(t1));
}

}  // namespace

int main() {
  std::printf("=== Protocol-example reproductions "
              "(asserted byte-for-byte in tests/) ===\n\n");
  PrintTableI();
  PrintFigure1();
  PrintFigure2AndTableIII();
  PrintFigure3();
  PrintTableIV();
  return 0;
}
