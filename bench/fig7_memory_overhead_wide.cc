// Figure 7 — Memory overhead of AOSI on a typical 40-column dataset.
//
// Paper setup: same experiment as Figure 6 but over a production-shaped
// 40-column dataset (~176M rows, ~22GB). The MVCC baseline (16 bytes per
// record) is now a smaller *fraction* of the dataset (~13%), while AOSI's
// overhead stays per-transaction and drops to ~0.2% after entries recycle.
//
// Default scale here: 200k rows of a 4-dimension / 36-metric cube.

#include <atomic>
#include <cinttypes>
#include <thread>

#include "bench_common.h"
#include "common/stopwatch.h"

using namespace cubrick;
using namespace cubrick::bench;

int main() {
  InitBenchObs();
  const uint64_t kTotalRows = Scaled(200'000);
  const uint64_t kBatchRows = 5000;
  const int kClients = 4;

  DatabaseOptions options;
  options.shards_per_cube = 2;
  options.threaded_shards = true;
  Database db(options);
  CUBRICK_CHECK(CreateWideCube(&db, "wide").ok());

  std::printf("Figure 7: AOSI memory overhead, 40-column dataset\n");
  std::printf("(4 clients, %" PRIu64 "-row batches, %" PRIu64
              " rows total)\n\n",
              kBatchRows, kTotalRows);
  std::printf("%10s %12s %14s %16s %18s %9s %9s\n", "time_ms", "records",
              "dataset", "aosi_overhead", "baseline_mvcc(16B)", "aosi_pct",
              "mvcc_pct");

  std::atomic<int64_t> batches_left{
      static_cast<int64_t>(kTotalRows / kBatchRows)};
  std::atomic<bool> done{false};

  auto client = [&](uint64_t seed) {
    Random rng(seed);
    while (batches_left.fetch_sub(1) > 0) {
      auto batch = WideBatch(&rng, kBatchRows);
      CUBRICK_CHECK(db.Load("wide", batch).ok());
    }
  };

  Stopwatch clock;
  auto sample = [&](const char* tag) {
    const uint64_t records = db.TotalRecords();
    const size_t dataset = db.DataMemoryUsage();
    const size_t aosi = db.HistoryMemoryUsage();
    const uint64_t baseline = records * 16;
    const double pct = [&](double x) {
      return dataset == 0 ? 0.0 : 100.0 * x / static_cast<double>(dataset);
    }(static_cast<double>(aosi));
    const double mvcc_pct =
        dataset == 0 ? 0.0
                     : 100.0 * static_cast<double>(baseline) /
                           static_cast<double>(dataset);
    std::printf("%10.0f %12" PRIu64 " %14s %16s %18s %8.3f%% %8.2f%% %s\n",
                clock.ElapsedMillis(), records,
                HumanBytes(static_cast<double>(dataset)).c_str(),
                HumanBytes(static_cast<double>(aosi)).c_str(),
                HumanBytes(static_cast<double>(baseline)).c_str(), pct,
                mvcc_pct, tag);
    std::fflush(stdout);
  };

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back(client, 2000 + c);
  }
  std::thread sampler([&] {
    while (!done.load()) {
      sample("");
      std::this_thread::sleep_for(std::chrono::milliseconds(250));
    }
  });
  for (auto& c : clients) c.join();
  done.store(true);
  sampler.join();

  sample("<- load finished");
  db.txns().TryAdvanceLSE(db.txns().LCE());
  db.PurgeAll();
  sample("<- purge (LSE advanced, epochs entries recycled)");

  const uint64_t records = db.TotalRecords();
  const size_t dataset = db.DataMemoryUsage();
  const size_t aosi = db.HistoryMemoryUsage();
  std::printf(
      "\nFinal: dataset %s; AOSI overhead %s (%.3f%% of dataset) vs MVCC "
      "baseline %s (%.2f%%)\n",
      HumanBytes(static_cast<double>(dataset)).c_str(),
      HumanBytes(static_cast<double>(aosi)).c_str(),
      100.0 * static_cast<double>(aosi) / static_cast<double>(dataset),
      HumanBytes(static_cast<double>(records * 16)).c_str(),
      100.0 * static_cast<double>(records * 16) /
          static_cast<double>(dataset));
  EmitBenchJson(
      "fig7",
      {{"records", static_cast<double>(records)},
       {"dataset_bytes", static_cast<double>(dataset)},
       {"aosi_overhead_bytes", static_cast<double>(aosi)},
       {"mvcc_baseline_bytes", static_cast<double>(records * 16)}});
  return 0;
}
