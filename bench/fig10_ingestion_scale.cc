// Figure 10 — Ingestion scale on a cluster.
//
// Paper setup: a daily Hive-to-Cubrick job loading ~400B single-column
// records into a 200-node cluster, peaking around 390M records/s (~6GB/s)
// and ramping down as upstream tasks finish. This driver reproduces the
// time series shape at laptop scale: an 8-node simulated cluster ingesting
// from parallel client threads whose number ramps up and then drains,
// printing records/s and bytes/s per second of wall time.
//
// A closing single-node section replays the same load through a Database
// with ingest_parallelism 1 vs 4 (DESIGN.md §4f) to show the per-node
// throughput headroom the morsel-parallel pipeline adds; both numbers join
// the fig10 headline.

#include <atomic>
#include <cinttypes>
#include <thread>

#include "bench_common.h"
#include "cluster/cluster.h"
#include "common/stopwatch.h"

using namespace cubrick;
using namespace cubrick::bench;
using cubrick::cluster::Cluster;
using cubrick::cluster::ClusterOptions;

namespace {

/// Single-node throughput at a fixed ingest fan-out: string-dimension
/// records so the parse stage (the part ingest_parallelism accelerates)
/// carries the cost. Returns records/s.
double SingleNodeThroughput(size_t ingest_parallelism, uint64_t total_rows) {
  DatabaseOptions options;
  options.shards_per_cube = 4;
  options.threaded_shards = true;
  options.ingest_parallelism = ingest_parallelism;
  Database db(options);
  CUBRICK_CHECK(db.CreateCube("node_local",
                              {{"region", 256, 4, true}},
                              {{"value", DataType::kInt64}})
                    .ok());
  const uint64_t kBatchRows = 10'000;
  Random rng(99);
  Stopwatch clock;
  for (uint64_t loaded = 0; loaded < total_rows; loaded += kBatchRows) {
    std::vector<Record> records;
    records.reserve(kBatchRows);
    for (uint64_t i = 0; i < kBatchRows; ++i) {
      records.push_back({"region-" + std::to_string(rng.Uniform(256)),
                         static_cast<int64_t>(rng.Next() & 0xffffff)});
    }
    CUBRICK_CHECK(db.Load("node_local", records).ok());
  }
  const double secs = clock.ElapsedSeconds();
  return secs == 0 ? 0 : static_cast<double>(total_rows) / secs;
}

}  // namespace

int main() {
  InitBenchObs();
  const uint64_t kTotalRows = Scaled(3'000'000);
  const uint64_t kBatchRows = 10'000;
  const int kClients = 6;

  ClusterOptions options;
  options.num_nodes = 8;
  options.shards_per_cube = 1;
  options.threaded_shards = true;
  options.replication_factor = 1;
  Cluster cluster(options);
  CUBRICK_CHECK(cluster
                    .CreateCube("warehouse",
                                {{"shard_key", 256, 4, false}},
                                {{"value", DataType::kInt64}})
                    .ok());

  std::printf("Figure 10: ingestion scale, 8-node simulated cluster, "
              "%d clients x %" PRIu64 "-row batches, %" PRIu64
              " rows total\n\n",
              kClients, kBatchRows, kTotalRows);

  std::atomic<int64_t> batches_left{
      static_cast<int64_t>(kTotalRows / kBatchRows)};
  std::atomic<uint64_t> rows_ingested{0};
  std::atomic<uint64_t> bytes_ingested{0};
  std::atomic<bool> done{false};

  auto client = [&](int id) {
    Random rng(77 + static_cast<uint64_t>(id));
    // Staggered start, mimicking upstream Hive tasks ramping up.
    std::this_thread::sleep_for(std::chrono::milliseconds(150 * id));
    while (batches_left.fetch_sub(1, std::memory_order_relaxed) > 0) {
      std::vector<Record> records;
      records.reserve(kBatchRows);
      for (uint64_t i = 0; i < kBatchRows; ++i) {
        records.push_back({static_cast<int64_t>(rng.Uniform(256)),
                           static_cast<int64_t>(rng.Next() & 0xffffff)});
      }
      auto txn =
          cluster.BeginReadWrite(1 + static_cast<uint32_t>(id) %
                                         options.num_nodes);
      CUBRICK_CHECK(txn.ok());
      cubrick::cluster::LoadStats stats;
      CUBRICK_CHECK(
          cluster.Append(&*txn, "warehouse", records, {}, &stats).ok());
      CUBRICK_CHECK(cluster.Commit(&*txn).ok());
      rows_ingested.fetch_add(kBatchRows, std::memory_order_relaxed);
      // ~9 bytes of raw input per row (key + value text), as a proxy for
      // the paper's "raw incoming data" series.
      bytes_ingested.fetch_add(kBatchRows * 9, std::memory_order_relaxed);
    }
  };

  Stopwatch clock;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) clients.emplace_back(client, c);

  std::printf("%10s %14s %14s %14s\n", "time_ms", "records/s", "bytes/s",
              "total_records");
  std::thread sampler([&] {
    uint64_t last_rows = 0, last_bytes = 0;
    while (!done.load(std::memory_order_seq_cst)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(500));
      const uint64_t rows = rows_ingested.load(std::memory_order_relaxed);
      const uint64_t bytes = bytes_ingested.load(std::memory_order_relaxed);
      std::printf("%10.0f %14s %14s %14" PRIu64 "\n", clock.ElapsedMillis(),
                  HumanCount(static_cast<double>(rows - last_rows) * 2)
                      .c_str(),
                  HumanBytes(static_cast<double>(bytes - last_bytes) * 2)
                      .c_str(),
                  rows);
      std::fflush(stdout);
      last_rows = rows;
      last_bytes = bytes;
    }
  });

  for (auto& c : clients) c.join();
  done.store(true, std::memory_order_seq_cst);
  sampler.join();

  const double secs = clock.ElapsedSeconds();
  std::printf(
      "\nJob finished: %" PRIu64 " records in %.1f s (avg %s records/s, "
      "peak visible in the ramp above). Cluster holds %" PRIu64
      " records across %u nodes.\n",
      rows_ingested.load(std::memory_order_relaxed), secs,
      HumanCount(static_cast<double>(rows_ingested.load(std::memory_order_relaxed)) / secs).c_str(),
      cluster.TotalRecords(), options.num_nodes);
  const double rows =
      static_cast<double>(rows_ingested.load(std::memory_order_relaxed));

  const uint64_t kSingleNodeRows = Scaled(400'000);
  const double serial_rps = SingleNodeThroughput(1, kSingleNodeRows);
  const double parallel_rps = SingleNodeThroughput(4, kSingleNodeRows);
  std::printf(
      "\nPer-node ingest pipeline (single node, %" PRIu64 " string-dim "
      "rows): %s records/s at ingest_parallelism=1, %s records/s at "
      "ingest_parallelism=4.\n",
      kSingleNodeRows, HumanCount(serial_rps).c_str(),
      HumanCount(parallel_rps).c_str());

  EmitBenchJson("fig10",
                {{"records", rows},
                 {"wall_seconds", secs},
                 {"records_per_second", secs == 0 ? 0 : rows / secs},
                 {"node_serial_records_per_second", serial_rps},
                 {"node_parallel4_records_per_second", parallel_rps}});
  return 0;
}
