#include "aosi_lint/lexer.h"

#include <cctype>

namespace aosilint {

std::string StripCommentsAndStrings(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    const char next = i + 1 < in.size() ? in[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out += "  ";
          ++i;
        } else if (c == '"') {
          // Raw string literal? The '"' follows an R (possibly with an
          // encoding prefix, e.g. u8R"(...)").
          bool raw = false;
          if (i > 0 && in[i - 1] == 'R') {
            size_t b = i - 1;
            while (b > 0 && std::isalnum(static_cast<unsigned char>(in[b - 1])))
              --b;
            // Reject identifiers that merely end in R (e.g. `fooR"x"` cannot
            // appear in valid code anyway).
            raw = (i - b) <= 3;
          }
          if (raw) {
            // R"delim( ... )delim"
            size_t p = i + 1;
            std::string delim;
            while (p < in.size() && in[p] != '(') delim += in[p++];
            const std::string close = ")" + delim + "\"";
            size_t end = in.find(close, p);
            if (end == std::string::npos) end = in.size();
            else end += close.size();
            for (size_t k = i; k < end; ++k)
              out += (in[k] == '\n') ? '\n' : ' ';
            i = end - 1;
          } else {
            state = State::kString;
            out += ' ';
          }
        } else if (c == '\'') {
          state = State::kChar;
          out += ' ';
        } else {
          out += c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
          out += '\n';
        } else {
          out += ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out += "  ";
          ++i;
        } else {
          out += (c == '\n') ? '\n' : ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out += "  ";
          ++i;
          if (next == '\n') out.back() = '\n';
        } else if (c == '"') {
          state = State::kCode;
          out += ' ';
        } else {
          out += (c == '\n') ? '\n' : ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out += "  ";
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          out += ' ';
        } else {
          out += ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<Token> Lex(const std::string& code) {
  static const char* kPuncts3[] = {"<<=", ">>=", "->*", "...", "<=>"};
  static const char* kPuncts2[] = {"::", "->", "++", "--", "<<", ">>", "<=",
                                   ">=", "==", "!=", "&&", "||", "+=", "-=",
                                   "*=", "/=", "%=", "&=", "|=", "^=", "##"};
  std::vector<Token> toks;
  int line = 1;
  size_t i = 0;
  const size_t n = code.size();
  while (i < n) {
    const char c = code[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i + 1;
      while (j < n && (std::isalnum(static_cast<unsigned char>(code[j])) ||
                       code[j] == '_'))
        ++j;
      toks.push_back({TokKind::kIdent, code.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i + 1;
      while (j < n && (std::isalnum(static_cast<unsigned char>(code[j])) ||
                       code[j] == '_' || code[j] == '\'' ||
                       (code[j] == '.' ) ||
                       ((code[j] == '+' || code[j] == '-') &&
                        (code[j - 1] == 'e' || code[j - 1] == 'E' ||
                         code[j - 1] == 'p' || code[j - 1] == 'P'))))
        ++j;
      toks.push_back({TokKind::kNumber, code.substr(i, j - i), line});
      i = j;
      continue;
    }
    bool matched = false;
    if (i + 3 <= n) {
      const std::string three = code.substr(i, 3);
      for (const char* p : kPuncts3) {
        if (three == p) {
          toks.push_back({TokKind::kPunct, three, line});
          i += 3;
          matched = true;
          break;
        }
      }
    }
    if (matched) continue;
    if (i + 2 <= n) {
      const std::string two = code.substr(i, 2);
      for (const char* p : kPuncts2) {
        if (two == p) {
          toks.push_back({TokKind::kPunct, two, line});
          i += 2;
          matched = true;
          break;
        }
      }
    }
    if (matched) continue;
    toks.push_back({TokKind::kPunct, std::string(1, c), line});
    ++i;
  }
  return toks;
}

std::vector<bool> MarkTemplateAngles(const std::vector<Token>& toks) {
  std::vector<bool> is_template(toks.size(), false);
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].text != "<" || i == 0) continue;
    if (toks[i - 1].kind != TokKind::kIdent) continue;
    int depth = 1;
    int paren = 0;
    bool ok = false;
    size_t j = i + 1;
    std::vector<size_t> opens = {i};
    std::vector<size_t> closes;
    for (int steps = 0; j < toks.size() && steps < 64; ++j, ++steps) {
      const Token& t = toks[j];
      if (paren > 0) {
        if (t.text == "(") ++paren;
        else if (t.text == ")") --paren;
        else if (t.text == ";" || t.text == "{" || t.text == "}") break;
        continue;
      }
      if (t.kind == TokKind::kIdent || t.kind == TokKind::kNumber ||
          t.text == "::" || t.text == "," || t.text == "*" || t.text == "&" ||
          t.text == "...") {
        continue;
      }
      if (t.text == "(") {
        ++paren;
        continue;
      }
      if (t.text == "<") {
        ++depth;
        opens.push_back(j);
        continue;
      }
      if (t.text == ">") {
        --depth;
        closes.push_back(j);
        if (depth == 0) {
          ok = true;
          break;
        }
        continue;
      }
      if (t.text == ">>") {
        depth -= 2;
        closes.push_back(j);
        if (depth <= 0) {
          ok = true;
          break;
        }
        continue;
      }
      break;  // anything else (operators, ;, braces) => not a template list
    }
    if (ok) {
      for (size_t k : opens) is_template[k] = true;
      for (size_t k : closes) is_template[k] = true;
    }
  }
  return is_template;
}

}  // namespace aosilint
