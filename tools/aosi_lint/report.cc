#include "aosi_lint/report.h"

#include <cctype>
#include <cstdio>
#include <sstream>

#include "aosi_lint/rules.h"

namespace aosilint {

namespace {

// Assembled at runtime so the reporter's own source never registers as a
// waiver site when the linter runs over its own tree.
std::string WaiverNeedle() {
  return std::string("aosi-lint: ") + "allow(";
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string LocationJson(const std::string& file, int line) {
  std::ostringstream os;
  os << "{\"physicalLocation\": {\"artifactLocation\": {\"uri\": \""
     << JsonEscape(file) << "\"}, \"region\": {\"startLine\": "
     << (line > 0 ? line : 1) << "}}";
  return os.str();  // caller appends optional message and the closing '}'
}

}  // namespace

std::vector<WaiverSite> CollectWaiverSites(const std::string& raw,
                                           const std::string& display_path) {
  const std::string needle = WaiverNeedle();
  std::vector<WaiverSite> sites;
  std::istringstream in(raw);
  std::string line_text;
  int line = 0;
  while (std::getline(in, line_text)) {
    ++line;
    const size_t pos = line_text.find(needle);
    if (pos == std::string::npos) continue;
    const size_t open = line_text.find('(', pos);
    const size_t close = line_text.find(')', open);
    if (open == std::string::npos || close == std::string::npos) continue;
    WaiverSite site;
    site.file = display_path;
    site.line = line;
    std::string cur;
    for (char c : line_text.substr(open + 1, close - open - 1) + ",") {
      if (c == ',') {
        if (!cur.empty()) site.rules.push_back(cur);
        cur.clear();
      } else if (!std::isspace(static_cast<unsigned char>(c))) {
        cur += c;
      }
    }
    sites.push_back(std::move(site));
  }
  return sites;
}

void PrintText(const std::vector<Finding>& findings, std::ostream& os) {
  for (const Finding& f : findings) {
    os << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
       << "\n";
    for (const Finding::Site& s : f.related) {
      os << "    " << s.file << ":" << s.line;
      if (!s.note.empty()) os << ": " << s.note;
      os << "\n";
    }
  }
}

std::string ToSarif(const std::vector<Finding>& findings) {
  std::ostringstream os;
  os << "{\n"
     << "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/"
        "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"runs\": [\n"
     << "    {\n"
     << "      \"tool\": {\n"
     << "        \"driver\": {\n"
     << "          \"name\": \"aosi_lint\",\n"
     << "          \"version\": \"2.0.0\",\n"
     << "          \"informationUri\": "
        "\"https://example.invalid/cubrick/docs/STATIC_ANALYSIS.md\",\n"
     << "          \"rules\": [\n";
  const auto& rules = Rules();
  for (size_t i = 0; i < rules.size(); ++i) {
    os << "            {\"id\": \"" << JsonEscape(rules[i].name)
       << "\", \"shortDescription\": {\"text\": \""
       << JsonEscape(rules[i].description) << "\"}}"
       << (i + 1 < rules.size() ? "," : "") << "\n";
  }
  os << "          ]\n"
     << "        }\n"
     << "      },\n"
     << "      \"results\": [\n";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    os << "        {\n"
       << "          \"ruleId\": \"" << JsonEscape(f.rule) << "\",\n"
       << "          \"level\": \"warning\",\n"
       << "          \"message\": {\"text\": \"" << JsonEscape(f.message)
       << "\"},\n"
       << "          \"locations\": [" << LocationJson(f.file, f.line)
       << "}]";
    if (!f.related.empty()) {
      os << ",\n          \"relatedLocations\": [\n";
      for (size_t j = 0; j < f.related.size(); ++j) {
        const Finding::Site& s = f.related[j];
        os << "            " << LocationJson(s.file, s.line);
        if (!s.note.empty())
          os << ", \"message\": {\"text\": \"" << JsonEscape(s.note) << "\"}";
        os << "}" << (j + 1 < f.related.size() ? "," : "") << "\n";
      }
      os << "          ]";
    }
    os << "\n        }" << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  os << "      ]\n"
     << "    }\n"
     << "  ]\n"
     << "}\n";
  return os.str();
}

std::string WaiverReportJson(const std::vector<WaiverSite>& sites) {
  std::ostringstream os;
  os << "{\n  \"waiver_count\": " << sites.size() << ",\n  \"sites\": [\n";
  for (size_t i = 0; i < sites.size(); ++i) {
    const WaiverSite& s = sites[i];
    os << "    {\"file\": \"" << JsonEscape(s.file)
       << "\", \"line\": " << s.line << ", \"rules\": [";
    for (size_t j = 0; j < s.rules.size(); ++j) {
      os << "\"" << JsonEscape(s.rules[j]) << "\""
         << (j + 1 < s.rules.size() ? ", " : "");
    }
    os << "]}" << (i + 1 < sites.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

}  // namespace aosilint
