// aosi_lint whole-program analyses.
//
// ProgramModel merges every file's FileModel (model.h): mutex identities
// are resolved against the union of all class member declarations (so a
// lock acquired in cluster.cc resolves against the member declared in
// cluster.h), REQUIRES annotations from in-class declarations are applied
// to out-of-line definitions, and a name-based call graph with class
// scoping is built. Five passes then run over the merged model:
//
//   lock-cycle            directed lock-order graph (edge A->B when B is
//                         acquired — directly or through any call depth —
//                         while A is held); every cycle is a potential
//                         deadlock, reported with the full witness path
//   hold-across-blocking  a lock held while calling, through any call
//                         depth, into cluster RPC (Handle*, DeliverOrQueue),
//                         TaskGroup::Wait, or a condition-variable wait.
//                         A CondVar wait under exactly the one lock it
//                         releases is the legitimate pattern and exempt
//   vis-cache-protocol    every VisibilityCache::Publish call is dominated
//                         by a versioned VisKey build (MakeKey) in the same
//                         function; every history mutation in src/storage
//                         (RecordAppend/RecordDelete/InstallRebuilt) clears
//                         the brick's visibility cache before returning
//   checker-hook-gate     checker-hook methods (OnBegin, OnFinish, ...)
//                         are only invoked behind the GetCheckerHook()
//                         enabled-load in the same function, keeping the
//                         hooks-off cost to one relaxed load
//   ebr-guard             reclamation discipline (common/ebr.h): calls
//                         returning EBR-protected pointers (VisibilityCache
//                         ::Lookup, EpochVector::PinnedSnapshot) must be
//                         dominated by an ebr::Guard declaration in the
//                         same function, and `delete`/`free` of a
//                         retire-managed type is only legal on a line
//                         marked as an EBR deleter
//
// See docs/STATIC_ANALYSIS.md ("Program-level analyses").

#pragma once

#include <map>
#include <string>
#include <vector>

#include "aosi_lint/model.h"

namespace aosilint {

class ProgramModel {
 public:
  // Takes ownership of the per-file models and builds the merged indexes.
  explicit ProgramModel(std::vector<FileModel> files);

  const std::vector<FileModel>& files() const { return files_; }

  // All function definitions with this bare name.
  const std::vector<const FunctionModel*>& ByBareName(
      const std::string& name) const;

  // Call-graph edge resolution: the candidate definitions a call site may
  // reach. Unqualified calls prefer a same-class method. Member calls
  // resolve through the receiver's declared type (function locals/params,
  // then the caller class's data members, then a member name declared by
  // exactly one class anywhere); a receiver with a known type that does not
  // define the method yields NO edge (the type is unmodeled, e.g. std::),
  // and an untyped receiver only resolves when the bare name is unique —
  // anything looser floods the lock graph with cross-class aliases.
  std::vector<const FunctionModel*> ResolveCall(const FunctionModel& caller,
                                                const CallSite& call) const;

  // Waiver lookup across all files by display path.
  bool Waived(const std::string& file, int line, const std::string& rule) const;

 private:
  void ResolveMutexIdentities();
  void ApplyDeclaredRequires();
  void BuildIndexes();

  std::vector<FileModel> files_;
  std::map<std::string, std::vector<const FunctionModel*>> by_bare_;
  std::map<std::string, std::vector<const FunctionModel*>> by_qual_;
  // mutex member name -> declaring classes (cross-file union).
  std::map<std::string, std::set<std::string>> mutex_classes_;
  // class -> data member -> declared type (cross-file union).
  std::map<std::string, std::map<std::string, std::string>> member_types_;
  // data member name -> the set of types it is declared with anywhere; a
  // unique entry lets `shared_->sut->F()` resolve without knowing shared_.
  std::map<std::string, std::set<std::string>> member_type_any_;
  std::map<std::string, const FileModel*> by_path_;
  std::vector<const FunctionModel*> empty_;
};

// Runs all five program passes; waived findings are already filtered out.
std::vector<Finding> RunProgramPasses(const ProgramModel& pm);

// Individual passes (exposed for unit tests).
std::vector<Finding> CheckLockCycles(const ProgramModel& pm);
std::vector<Finding> CheckHoldAcrossBlocking(const ProgramModel& pm);
std::vector<Finding> CheckVisCacheProtocol(const ProgramModel& pm);
std::vector<Finding> CheckCheckerHookGate(const ProgramModel& pm);
std::vector<Finding> CheckEbrGuard(const ProgramModel& pm);

}  // namespace aosilint
