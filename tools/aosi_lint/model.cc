#include "aosi_lint/model.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace aosilint {

namespace {

// The waiver marker, assembled so the linter's own sources never count as
// waiver sites when the tree is scanned.
std::string WaiverKey() { return std::string("aosi-lint: ") + "allow("; }

const std::set<std::string>& Keywords() {
  static const std::set<std::string> kw = {
      "if",       "for",      "while",   "switch",   "catch",  "return",
      "sizeof",   "alignof",  "alignas", "decltype", "throw",  "new",
      "delete",   "operator", "static_assert",       "noexcept",
      "co_await", "co_return","co_yield","case",     "default"};
  return kw;
}

const std::set<std::string>& AnnotationMacros() {
  static const std::set<std::string> m = {
      "REQUIRES",         "REQUIRES_SHARED",    "EXCLUDES",
      "ACQUIRE",          "ACQUIRE_SHARED",     "RELEASE",
      "RELEASE_SHARED",   "RELEASE_GENERIC",    "TRY_ACQUIRE",
      "TRY_ACQUIRE_SHARED","RETURN_CAPABILITY", "ASSERT_CAPABILITY",
      "ASSERT_SHARED_CAPABILITY", "NO_THREAD_SAFETY_ANALYSIS",
      "GUARDED_BY",       "PT_GUARDED_BY",      "CAPABILITY",
      "SCOPED_CAPABILITY"};
  return m;
}

const std::set<std::string>& RaiiLockTypes() {
  static const std::set<std::string> t = {"MutexLock", "WriterMutexLock",
                                          "ReaderMutexLock"};
  return t;
}

}  // namespace

// ---------------------------------------------------------------------------
// Classification / loading
// ---------------------------------------------------------------------------

FileClass Classify(std::string rel) {
  std::replace(rel.begin(), rel.end(), '\\', '/');
  FileClass fc;
  fc.rel = rel;
  fc.in_src = rel.rfind("src/", 0) == 0;
  fc.epoch_zone = rel.rfind("src/aosi/epoch", 0) == 0;
  fc.mutex_header = rel == "src/common/mutex.h" ||
                    rel == "src/common/thread_annotations.h";
  fc.in_cluster = rel.rfind("src/cluster/", 0) == 0;
  fc.in_obs = rel.rfind("src/obs/", 0) == 0;
  fc.checker_hook_header = rel == "src/aosi/checker_hook.h";
  fc.in_check = rel.rfind("src/check/", 0) == 0;
  fc.simd_impl = rel.rfind("src/common/simd", 0) == 0;
  return fc;
}

bool SourceFile::Waived(int line, const std::string& rule) const {
  auto it = waivers.find(line);
  return it != waivers.end() &&
         (it->second.count(rule) || it->second.count("*"));
}

bool FileModel::Waived(int line, const std::string& rule) const {
  auto it = waivers.find(line);
  return it != waivers.end() &&
         (it->second.count(rule) || it->second.count("*"));
}

std::map<int, std::set<std::string>> CollectWaivers(const std::string& raw) {
  std::map<int, std::set<std::string>> waivers;
  const std::string key = WaiverKey();
  std::istringstream in(raw);
  std::string line_text;
  int line = 0;
  while (std::getline(in, line_text)) {
    ++line;
    const size_t pos = line_text.find(key);
    if (pos == std::string::npos) continue;
    const size_t open = line_text.find('(', pos);
    const size_t close = line_text.find(')', open);
    if (open == std::string::npos || close == std::string::npos) continue;
    std::string rules = line_text.substr(open + 1, close - open - 1);
    std::set<std::string> names;
    std::string cur;
    for (char c : rules + ",") {
      if (c == ',') {
        if (!cur.empty()) names.insert(cur);
        cur.clear();
      } else if (!std::isspace(static_cast<unsigned char>(c))) {
        cur += c;
      }
    }
    waivers[line].insert(names.begin(), names.end());
    // A waiver alone on its line also covers the next line.
    const size_t comment = line_text.find("//");
    if (comment != std::string::npos &&
        line_text.find_first_not_of(" \t") == comment) {
      waivers[line + 1].insert(names.begin(), names.end());
    }
  }
  return waivers;
}

std::set<int> CollectRelaxedComments(const std::string& raw) {
  std::set<int> lines;
  std::istringstream in(raw);
  std::string line_text;
  int line = 0;
  while (std::getline(in, line_text)) {
    ++line;
    const size_t comment = line_text.find("//");
    if (comment == std::string::npos) continue;
    if (line_text.find("relaxed:", comment) == std::string::npos) continue;
    lines.insert(line);
    if (line_text.find_first_not_of(" \t") == comment) lines.insert(line + 1);
  }
  return lines;
}

std::set<int> CollectEbrDeleterComments(const std::string& raw) {
  // Assembled so this function never marks its own defining line when the
  // linter lints itself.
  const std::string key = std::string("ebr-") + "deleter";
  std::set<int> lines;
  std::istringstream in(raw);
  std::string line_text;
  int line = 0;
  while (std::getline(in, line_text)) {
    ++line;
    const size_t comment = line_text.find("//");
    if (comment == std::string::npos) continue;
    if (line_text.find(key, comment) == std::string::npos) continue;
    lines.insert(line);
    if (line_text.find_first_not_of(" \t") == comment) lines.insert(line + 1);
  }
  return lines;
}

std::string FindDirective(const std::string& raw, const std::string& key) {
  const size_t pos = raw.find(key);
  if (pos == std::string::npos) return "";
  size_t start = pos + key.size();
  while (start < raw.size() && (raw[start] == ' ' || raw[start] == '\t'))
    ++start;
  size_t end = start;
  while (end < raw.size() && !std::isspace(static_cast<unsigned char>(raw[end])))
    ++end;
  return raw.substr(start, end - start);
}

bool LoadFile(const std::string& path, const std::string& rel_for_rules,
              SourceFile* out, std::string* raw_out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::stringstream ss;
  ss << in.rdbuf();
  std::string raw = ss.str();
  // A fixture can emulate a tree location with an `aosi-lint-as` directive.
  // The key is assembled at runtime so the linter's own sources (and this
  // very line) never self-classify when the tree is scanned.
  std::string as = FindDirective(raw, std::string("aosi-lint") + "-as:");
  out->display_path = path;
  out->cls = Classify(as.empty() ? rel_for_rules : as);
  out->waivers = CollectWaivers(raw);
  out->relaxed_lines = CollectRelaxedComments(raw);
  out->ebr_deleter_lines = CollectEbrDeleterComments(raw);
  out->toks = Lex(StripCommentsAndStrings(raw));
  if (raw_out) *raw_out = std::move(raw);
  return true;
}

void LoadFromString(const std::string& content, const std::string& rel,
                    SourceFile* out) {
  const std::string as = FindDirective(content, std::string("aosi-lint") + "-as:");
  out->display_path = rel;
  out->cls = Classify(as.empty() ? rel : as);
  out->waivers = CollectWaivers(content);
  out->relaxed_lines = CollectRelaxedComments(content);
  out->ebr_deleter_lines = CollectEbrDeleterComments(content);
  out->toks = Lex(StripCommentsAndStrings(content));
}

// ---------------------------------------------------------------------------
// Model extraction
// ---------------------------------------------------------------------------

namespace {

// Index of the token matching the open paren/brace/bracket at `open`, or
// toks.size() when unbalanced.
size_t MatchingClose(const std::vector<Token>& toks, size_t open) {
  const std::string& o = toks[open].text;
  const std::string c = o == "(" ? ")" : o == "{" ? "}" : "]";
  int depth = 0;
  for (size_t j = open; j < toks.size(); ++j) {
    if (toks[j].text == o) ++depth;
    else if (toks[j].text == c && --depth == 0) return j;
  }
  return toks.size();
}

// Last identifier in toks[(begin, end)) — the member a lock expression
// finally names (`queues_[i]->mu` => mu).
std::string LastIdentIn(const std::vector<Token>& toks, size_t begin,
                        size_t end) {
  for (size_t j = end; j > begin;) {
    --j;
    if (toks[j].kind == TokKind::kIdent) return toks[j].text;
  }
  return "";
}

// Splits the arguments of an annotation like REQUIRES(a, b.c) into the last
// identifier of each top-level comma-separated chunk.
std::vector<std::string> AnnotationArgs(const std::vector<Token>& toks,
                                        size_t open, size_t close) {
  std::vector<std::string> args;
  size_t chunk_begin = open + 1;
  int depth = 0;
  for (size_t j = open + 1; j <= close; ++j) {
    const std::string& t = toks[j].text;
    if (t == "(" || t == "[" || t == "{") ++depth;
    else if (t == ")" || t == "]" || t == "}") --depth;
    if ((j == close) || (t == "," && depth == 0)) {
      const std::string id = LastIdentIn(toks, chunk_begin - 1, j);
      if (!id.empty()) args.push_back(id);
      chunk_begin = j + 1;
    }
  }
  return args;
}

// Pass A: token indices of '{' that open a class/struct definition, mapped
// to the class name. Template parameter lists (`template <class T>`) and
// forward declarations are rejected.
std::map<size_t, std::string> FindClassOpens(const std::vector<Token>& toks) {
  std::map<size_t, std::string> opens;
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent ||
        (toks[i].text != "class" && toks[i].text != "struct"))
      continue;
    if (i > 0 && toks[i - 1].text == "enum") continue;
    // `template <class T>`: the keyword sits inside an angle list.
    if (i > 0 && (toks[i - 1].text == "<" || toks[i - 1].text == ",")) continue;
    size_t j = i + 1;
    // Skip alignas(...)/attribute-ish parenthesized decorations.
    while (j < toks.size() && toks[j].kind == TokKind::kIdent &&
           j + 1 < toks.size() && toks[j + 1].text == "(" &&
           (toks[j].text == "alignas" || toks[j].text == "CAPABILITY" ||
            toks[j].text == "SCOPED_CAPABILITY")) {
      const size_t close = MatchingClose(toks, j + 1);
      if (close >= toks.size()) break;
      j = close + 1;
    }
    if (j >= toks.size() || toks[j].kind != TokKind::kIdent) continue;
    const std::string name = toks[j].text;
    // Scan forward for '{' (definition) or ';'/',' (declaration/param),
    // allowing a base-clause and more attribute macros.
    size_t k = j + 1;
    int angle = 0;
    bool found = false;
    for (int steps = 0; k < toks.size() && steps < 96; ++k, ++steps) {
      const std::string& t = toks[k].text;
      if (t == "<") ++angle;
      else if (t == ">") --angle;
      else if (t == ">>") angle -= 2;
      else if (angle == 0) {
        if (t == "{") { found = true; break; }
        if (t == ";" || t == "=" || t == ")" || t == "&" || t == "*") break;
        if (toks[k].kind == TokKind::kIdent || t == ":" || t == "," ||
            t == "::" || t == "(")
          continue;
        break;
      }
    }
    if (found) opens[k] = name;
  }
  return opens;
}

// A parsed variable declaration `Type[<...>][*&] name`, where Type looks
// class-like (uppercase first letter, or a smart pointer whose pointee is
// recorded instead).
struct DeclParse {
  bool ok = false;
  std::string type;
  std::string name;
  size_t name_idx = 0;
  size_t end_idx = 0;  // index of the token after the name
};

// Tries to parse a declaration whose type token is at `i`. The caller
// decides which terminators (the token at end_idx) make it a real
// declaration in its context.
DeclParse ParseVarDecl(const std::vector<Token>& toks, size_t i) {
  DeclParse d;
  if (toks[i].kind != TokKind::kIdent) return d;
  const std::string& ty = toks[i].text;
  size_t j = i + 1;
  if ((ty == "unique_ptr" || ty == "shared_ptr") && j < toks.size() &&
      toks[j].text == "<") {
    // Record the pointee: member calls through the pointer dispatch to it.
    int angle = 0;
    for (int steps = 0; j < toks.size() && steps < 64; ++j, ++steps) {
      const std::string& t = toks[j].text;
      if (t == "<") ++angle;
      else if (t == ">") { if (--angle == 0) { ++j; break; } }
      else if (t == ">>") { angle -= 2; if (angle <= 0) { ++j; break; } }
      else if (d.type.empty() && toks[j].kind == TokKind::kIdent &&
               std::isupper(static_cast<unsigned char>(t[0]))) {
        d.type = t;
      } else if (t == ";" || t == "{" || t == "}") {
        return d;
      }
    }
    if (d.type.empty()) return d;
  } else {
    if (!std::isupper(static_cast<unsigned char>(ty[0]))) return d;
    if (Keywords().count(ty) || AnnotationMacros().count(ty)) return d;
    d.type = ty;
    // Skip template arguments (`EpochMap<int> m;` keeps the outer type).
    if (j < toks.size() && toks[j].text == "<") {
      int angle = 0;
      for (int steps = 0; j < toks.size() && steps < 64; ++j, ++steps) {
        const std::string& t = toks[j].text;
        if (t == "<") ++angle;
        else if (t == ">") { if (--angle == 0) { ++j; break; } }
        else if (t == ">>") { angle -= 2; if (angle <= 0) { ++j; break; } }
        else if (t == ";" || t == "{" || t == "}" || t == "(") return d;
      }
      if (j >= toks.size()) return d;
    }
  }
  for (int stars = 0;
       j < toks.size() && stars < 3 &&
       (toks[j].text == "*" || toks[j].text == "&" || toks[j].text == "&&");
       ++stars)
    ++j;
  if (j + 1 >= toks.size() || toks[j].kind != TokKind::kIdent ||
      Keywords().count(toks[j].text))
    return d;
  d.name = toks[j].text;
  d.name_idx = j;
  d.end_idx = j + 1;
  d.ok = true;
  return d;
}

struct HeaderParse {
  bool is_definition = false;   // body '{' found
  bool is_declaration = false;  // ended with ';' or '= default/delete/0'
  size_t body_open = 0;         // token index of the body '{'
  std::vector<std::string> requires_args;
};

// Parses a potential function header whose name is at `i` (its '(' at i+1).
// Returns how it ended; on failure both flags stay false.
HeaderParse ParseFunctionHeader(const std::vector<Token>& toks, size_t i) {
  HeaderParse hp;
  const size_t close = MatchingClose(toks, i + 1);
  if (close >= toks.size()) return hp;
  size_t j = close + 1;
  bool in_init_list = false;
  for (int steps = 0; j < toks.size() && steps < 512; ++steps) {
    const Token& t = toks[j];
    if (t.text == "{") {
      if (in_init_list) {
        // Brace-init of a member (`b_{2}`) directly follows an identifier
        // or a closing template angle; the body brace follows ')' / '}' /
        // ',' boundaries instead.
        const std::string& prev = toks[j - 1].text;
        if (toks[j - 1].kind == TokKind::kIdent || prev == ">") {
          const size_t c = MatchingClose(toks, j);
          if (c >= toks.size()) return hp;
          j = c + 1;
          continue;
        }
      }
      hp.is_definition = true;
      hp.body_open = j;
      return hp;
    }
    if (t.text == ";") {
      hp.is_declaration = true;
      return hp;
    }
    if (t.text == "=") {
      // `= default;` / `= delete;` / `= 0;` — still a declaration.
      hp.is_declaration = true;
      return hp;
    }
    if (t.kind == TokKind::kIdent) {
      if (AnnotationMacros().count(t.text) && j + 1 < toks.size() &&
          toks[j + 1].text == "(") {
        const size_t c = MatchingClose(toks, j + 1);
        if (c >= toks.size()) return hp;
        if (t.text == "REQUIRES" || t.text == "REQUIRES_SHARED") {
          auto args = AnnotationArgs(toks, j + 1, c);
          hp.requires_args.insert(hp.requires_args.end(), args.begin(),
                                  args.end());
        }
        j = c + 1;
        continue;
      }
      if (t.text == "noexcept" && j + 1 < toks.size() &&
          toks[j + 1].text == "(") {
        const size_t c = MatchingClose(toks, j + 1);
        if (c >= toks.size()) return hp;
        j = c + 1;
        continue;
      }
      // const / override / final / trailing-return type names / initializer
      // member names — all fine to step over.
      ++j;
      continue;
    }
    if (t.text == ":") {
      if (j + 1 < toks.size() && toks[j + 1].text == ":") return hp;
      in_init_list = true;
      ++j;
      continue;
    }
    if (t.text == "(") {
      const size_t c = MatchingClose(toks, j);
      if (c >= toks.size()) return hp;
      j = c + 1;
      continue;
    }
    if (t.text == "->" || t.text == "::" || t.text == "<" || t.text == ">" ||
        t.text == ">>" || t.text == "," || t.text == "&" || t.text == "&&" ||
        t.text == "*" || toks[j].kind == TokKind::kNumber) {
      ++j;
      continue;
    }
    return hp;  // anything else: not a function header
  }
  return hp;
}

}  // namespace

FileModel ExtractModel(const SourceFile& f) {
  FileModel fm;
  fm.cls = f.cls;
  fm.display_path = f.display_path;
  fm.waivers = f.waivers;

  const std::vector<Token>& toks = f.toks;
  const std::map<size_t, std::string> class_opens = FindClassOpens(toks);

  struct ClassScope {
    std::string name;
    int depth;  // brace depth the class body opened at
  };
  struct ActiveLock {
    std::string name;  // unresolved (last identifier of the lock expression)
    int depth;         // brace depth of the RAII declaration
    bool manual;       // .Lock() call, released only by .Unlock()
  };

  std::vector<ClassScope> classes;
  std::vector<ActiveLock> locks;
  FunctionModel fn;
  bool in_fn = false;
  int fn_depth = 0;  // brace depth inside the current function body
  int depth = 0;

  auto current_class = [&]() -> std::string {
    return classes.empty() ? "" : classes.back().name;
  };
  auto held_now = [&]() {
    std::vector<std::string> held = fn.requires_entry;
    for (const ActiveLock& l : locks) held.push_back(l.name);
    return held;
  };

  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];

    if (t.text == "{") {
      auto it = class_opens.find(i);
      if (it != class_opens.end()) classes.push_back({it->second, depth});
      ++depth;
      continue;
    }
    if (t.text == "}") {
      --depth;
      while (!classes.empty() && classes.back().depth == depth) classes.pop_back();
      while (!locks.empty() && !locks.back().manual &&
             locks.back().depth > depth)
        locks.pop_back();
      if (in_fn && depth < fn_depth) {
        fm.functions.push_back(std::move(fn));
        fn = FunctionModel();
        in_fn = false;
        locks.clear();
      }
      continue;
    }
    if (t.kind != TokKind::kIdent) continue;

    // --- Mutex member/global declarations: `Mutex name_;` --------------
    if ((t.text == "Mutex" || t.text == "SharedMutex") && i + 2 < toks.size() &&
        toks[i + 1].kind == TokKind::kIdent &&
        (toks[i + 2].text == ";" || toks[i + 2].text == "{" ||
         toks[i + 2].text == "=")) {
      fm.mutex_decls[current_class()].insert(toks[i + 1].text);
      continue;
    }

    if (!in_fn) {
      // --- Data member declarations: `Database db_;`, `unique_ptr<T> p_;`
      if (!classes.empty() && (i == 0 || toks[i - 1].kind != TokKind::kIdent)) {
        const DeclParse d = ParseVarDecl(toks, i);
        if (d.ok) {
          const std::string& term = toks[d.end_idx].text;
          if (term == ";" || term == "=" || term == "{") {
            fm.member_types[current_class()][d.name] = d.type;
          }
        }
      }
      // --- Function definitions and in-class declarations ---------------
      if (i + 1 >= toks.size() || toks[i + 1].text != "(") continue;
      if (Keywords().count(t.text) || AnnotationMacros().count(t.text) ||
          RaiiLockTypes().count(t.text))
        continue;
      if (i > 0 && toks[i - 1].text == "~") continue;  // destructor
      const HeaderParse hp = ParseFunctionHeader(toks, i);
      if (hp.is_declaration) {
        if (!hp.requires_args.empty() && !current_class().empty()) {
          auto& reqs = fm.requires_decls[current_class()][t.text];
          reqs.insert(reqs.end(), hp.requires_args.begin(),
                      hp.requires_args.end());
        }
        continue;
      }
      if (!hp.is_definition) continue;
      fn = FunctionModel();
      fn.name = t.text;
      fn.file = f.display_path;
      fn.line = t.line;
      fn.requires_entry = hp.requires_args;
      // Out-of-line `Cls::Name(...)` qualification wins over the (absent)
      // class scope; in-class definitions take the enclosing class.
      if (i >= 2 && toks[i - 1].text == "::" &&
          toks[i - 2].kind == TokKind::kIdent) {
        fn.cls = toks[i - 2].text;
      } else {
        fn.cls = current_class();
      }
      // Parameter types: `Status Append(Database* db, const Batch& rows)`.
      const size_t params_close = MatchingClose(toks, i + 1);
      for (size_t k = i + 2; k + 1 < params_close;) {
        const DeclParse d = ParseVarDecl(toks, k);
        if (d.ok && d.end_idx <= params_close) {
          const std::string& term = toks[d.end_idx].text;
          if (term == "," || term == ")" || term == "=") {
            fn.local_types[d.name] = d.type;
            k = d.end_idx;
            continue;
          }
        }
        ++k;
      }
      // Enter the body: jump to its '{' (the main loop's brace handler
      // increments depth when it reaches it). Member-initializer braces in
      // the skipped header region never nest functions, so this is safe.
      in_fn = true;
      fn_depth = depth + 1;
      i = hp.body_open - 1;
      continue;
    }

    // --- Inside a function body ---------------------------------------
    // RAII lock acquisition: `MutexLock l(mu);` / `WriterMutexLock l{mu};`
    if (RaiiLockTypes().count(t.text) && i + 2 < toks.size() &&
        toks[i + 1].kind == TokKind::kIdent &&
        (toks[i + 2].text == "(" || toks[i + 2].text == "{")) {
      const size_t close = MatchingClose(toks, i + 2);
      if (close < toks.size()) {
        const std::string target = LastIdentIn(toks, i + 2, close);
        if (!target.empty()) {
          LockAcquire acq;
          acq.mutex = target;
          acq.line = t.line;
          acq.tok_index = i;
          acq.reader = t.text == "ReaderMutexLock";
          acq.held_before = held_now();
          fn.acquires.push_back(acq);
          locks.push_back({target, depth, /*manual=*/false});
        }
        i = close;
      }
      continue;
    }

    // Manual lock calls on a mutex member: `mu_.Lock()` ... `mu_.Unlock()`.
    if ((t.text == "Lock" || t.text == "ReaderLock" || t.text == "Unlock" ||
         t.text == "ReaderUnlock") &&
        i >= 2 && (toks[i - 1].text == "." || toks[i - 1].text == "->") &&
        toks[i - 2].kind == TokKind::kIdent && i + 1 < toks.size() &&
        toks[i + 1].text == "(" && !f.cls.mutex_header) {
      const std::string target = toks[i - 2].text;
      if (t.text == "Lock" || t.text == "ReaderLock") {
        LockAcquire acq;
        acq.mutex = target;
        acq.line = t.line;
        acq.tok_index = i;
        acq.reader = t.text == "ReaderLock";
        acq.held_before = held_now();
        fn.acquires.push_back(acq);
        locks.push_back({target, depth, /*manual=*/true});
      } else {
        for (size_t k = locks.size(); k > 0;) {
          --k;
          if (locks[k].name == target) {
            locks.erase(locks.begin() + static_cast<long>(k));
            break;
          }
        }
      }
      continue;
    }

    // Block-scope locals: `BessColumn out = EmptyLike();`, `Foo f(x);`,
    // range-for bindings (`for (Brick& b : bricks)`).
    if (i == 0 || toks[i - 1].kind != TokKind::kIdent) {
      const DeclParse d = ParseVarDecl(toks, i);
      if (d.ok) {
        const std::string& term = toks[d.end_idx].text;
        if (term == ";" || term == "=" || term == "(" || term == "{" ||
            term == ":") {
          fn.local_types[d.name] = d.type;
        }
      }
    }

    // Protocol-relevant identifiers.
    if (t.text == "VisKey" || t.text == "MakeKey") fn.viskey_tokens.push_back(i);
    if (t.text == "GetCheckerHook") fn.checker_get_tokens.push_back(i);
    if (t.text == "Guard" && i >= 2 && toks[i - 1].text == "::" &&
        toks[i - 2].text == "ebr") {
      fn.ebr_guard_tokens.push_back(i);
    }

    // `delete expr` sites (for the ebr-guard reclamation rule). The pointee
    // type is resolved from a static_cast or a declared local; marked
    // lines are deleter bodies and exempt by construction.
    if (t.text == "delete" && i > 0 && toks[i - 1].text != "=" &&
        toks[i - 1].text != "operator" &&
        !f.ebr_deleter_lines.count(t.line)) {
      size_t j = i + 1;
      if (j + 1 < toks.size() && toks[j].text == "[" &&
          toks[j + 1].text == "]") {
        j += 2;
      }
      FunctionModel::EbrDeleteSite site;
      site.line = t.line;
      site.tok_index = i;
      if (j + 1 < toks.size() && toks[j].text == "static_cast" &&
          toks[j + 1].text == "<") {
        for (size_t k = j + 2; k < toks.size() && toks[k].text != ">"; ++k) {
          if (toks[k].text == ";") break;
          if (toks[k].kind == TokKind::kIdent &&
              std::isupper(static_cast<unsigned char>(toks[k].text[0]))) {
            site.type = toks[k].text;
            break;
          }
        }
      } else if (j + 1 < toks.size() && toks[j].kind == TokKind::kIdent &&
                 toks[j + 1].text == ";") {
        auto lt = fn.local_types.find(toks[j].text);
        if (lt != fn.local_types.end()) site.type = lt->second;
      }
      fn.ebr_deletes.push_back(std::move(site));
      continue;
    }
    // `free(ptr)` of a typed local — same reclamation-discipline concern.
    if (t.text == "free" && i + 3 < toks.size() && toks[i + 1].text == "(" &&
        toks[i + 2].kind == TokKind::kIdent && toks[i + 3].text == ")" &&
        !f.ebr_deleter_lines.count(t.line)) {
      FunctionModel::EbrDeleteSite site;
      site.line = t.line;
      site.tok_index = i;
      auto lt = fn.local_types.find(toks[i + 2].text);
      if (lt != fn.local_types.end()) site.type = lt->second;
      fn.ebr_deletes.push_back(std::move(site));
    }

    // Call sites.
    if (i + 1 < toks.size() && toks[i + 1].text == "(" &&
        !Keywords().count(t.text) && !AnnotationMacros().count(t.text)) {
      CallSite c;
      c.name = t.text;
      c.line = t.line;
      c.tok_index = i;
      c.has_args = i + 2 < toks.size() && toks[i + 2].text != ")";
      if (i >= 2 && (toks[i - 1].text == "." || toks[i - 1].text == "->")) {
        c.member_call = true;
        if (toks[i - 2].kind == TokKind::kIdent) c.receiver = toks[i - 2].text;
      } else if (i >= 2 && toks[i - 1].text == "::" &&
                 toks[i - 2].kind == TokKind::kIdent) {
        c.class_qualified = true;
        c.receiver = toks[i - 2].text;
      }
      c.held = held_now();
      fn.calls.push_back(std::move(c));
    }
  }
  if (in_fn) fm.functions.push_back(std::move(fn));
  return fm;
}

}  // namespace aosilint
