// aosi_lint reporters: plain text, SARIF 2.1.0 (for CI artifact upload /
// code-scanning ingestion), and the waiver-debt report consumed by
// scripts/check_waiver_budget.py.

#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "aosi_lint/model.h"

namespace aosilint {

// One allow-comment waiver in the tree (the debt ledger entry).
struct WaiverSite {
  std::string file;
  int line = 0;
  std::vector<std::string> rules;
};

// Scans raw (pre-strip) file content for waiver comments, one site per
// comment (unlike CollectWaivers, which expands a comment-only line to also
// cover the next line).
std::vector<WaiverSite> CollectWaiverSites(const std::string& raw,
                                           const std::string& display_path);

// `file:line: [rule] message` plus indented witness steps.
void PrintText(const std::vector<Finding>& findings, std::ostream& os);

// SARIF 2.1.0 document: one run, driver "aosi_lint", rules from Rules(),
// one result per finding with witness steps as relatedLocations.
std::string ToSarif(const std::vector<Finding>& findings);

// JSON: {"waiver_count": N, "sites": [{"file", "line", "rules": [...]}]}.
std::string WaiverReportJson(const std::vector<WaiverSite>& sites);

}  // namespace aosilint
