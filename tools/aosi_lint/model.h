// aosi_lint per-file model: everything the whole-program analyses
// (program.h) need to know about one translation unit, extracted at token
// level with no preprocessor or type information.
//
// The model of a file is:
//   - its FileClass (tree location => which rules apply),
//   - waiver and `// relaxed:` comment lines,
//   - declared Mutex/SharedMutex members per class (so a lock named `mutex_`
//     in TxnManager and one in MetricsRegistry stay distinct),
//   - REQUIRES(...) annotations on in-class method *declarations* (the
//     out-of-line definition usually does not repeat them),
//   - one FunctionModel per function *definition*: ordered lock
//     acquire/release events, call sites with the set of locks held at the
//     call, and the token indices of protocol-relevant identifiers
//     (GetCheckerHook, VisKey/MakeKey, ...).
//
// docs/STATIC_ANALYSIS.md ("The per-file model") documents this format for
// rule authors.

#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "aosi_lint/lexer.h"

namespace aosilint {

// ---------------------------------------------------------------------------
// Findings (shared by per-file rules, program passes and reporters)
// ---------------------------------------------------------------------------

struct Finding {
  // One step of a witness path (a hold site, a call edge, an acquire).
  struct Site {
    std::string file;
    int line = 0;
    std::string note;
  };

  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
  // Witness steps for program-level findings (call chains, the acquires of
  // a lock cycle); rendered as indented continuation lines and as SARIF
  // relatedLocations.
  std::vector<Site> related;
};

// ---------------------------------------------------------------------------
// File classification
// ---------------------------------------------------------------------------

struct FileClass {
  std::string rel;       // path used for rule scoping and display
  bool in_src = false;
  bool epoch_zone = false;    // src/aosi/epoch*
  bool mutex_header = false;  // src/common/mutex.h / thread_annotations.h
  bool in_cluster = false;    // src/cluster/
  bool in_obs = false;        // src/obs/ (relaxed instrument writes allowed)
  bool checker_hook_header = false;  // src/aosi/checker_hook.h
  bool in_check = false;      // src/check/ (the checker implementation)
  bool simd_impl = false;     // src/common/simd.* (raw intrinsics allowed)
};

FileClass Classify(std::string rel);

// ---------------------------------------------------------------------------
// Source file: raw token stream + waivers
// ---------------------------------------------------------------------------

struct SourceFile {
  std::string display_path;  // path printed in findings
  FileClass cls;
  std::vector<Token> toks;
  // line -> waived rule names ("*" = all)
  std::map<int, std::set<std::string>> waivers;
  // Lines carrying (or covered by) a '// relaxed: <why>' justification.
  std::set<int> relaxed_lines;
  // Lines carrying (or covered by) an '// ebr-deleter' marker: a delete of
  // a retire-managed type here runs inside an EBR deleter (or at another
  // provably safe point) and is exempt from the ebr-guard rule.
  std::set<int> ebr_deleter_lines;

  // True when `line` carries a waiver for `rule` (or for "*").
  bool Waived(int line, const std::string& rule) const;
};

// Scans raw (pre-strip) content for waiver comments.
std::map<int, std::set<std::string>> CollectWaivers(const std::string& raw);

// Scans raw (pre-strip) content for '// relaxed: <why>' justification
// comments. Like waivers, a comment-only line also covers the next line.
std::set<int> CollectRelaxedComments(const std::string& raw);

// Scans raw (pre-strip) content for '// ebr-deleter' marker comments.
// Same line-coverage semantics as the relaxed justifications.
std::set<int> CollectEbrDeleterComments(const std::string& raw);

// First value following `key` in the raw text (fixture directives).
std::string FindDirective(const std::string& raw, const std::string& key);

// Reads and tokenizes `path`. `rel_for_rules` scopes the rules unless the
// file carries an `aosi-lint-as` directive. Returns false on IO error.
bool LoadFile(const std::string& path, const std::string& rel_for_rules,
              SourceFile* out, std::string* raw_out);

// In-memory variant for tests: `content` is the raw source text.
void LoadFromString(const std::string& content, const std::string& rel,
                    SourceFile* out);

// ---------------------------------------------------------------------------
// Per-file semantic model
// ---------------------------------------------------------------------------

// One call site inside a function body, with the lock context at the call.
struct CallSite {
  std::string name;      // bare callee name
  std::string receiver;  // receiver ident for x.F()/x->F(), class for C::F()
  bool member_call = false;     // called through . or ->
  bool class_qualified = false; // called as Class::F()
  int line = 0;
  size_t tok_index = 0;
  // Number of arguments is not tracked exactly; this is enough to tell a
  // CondVar-style `cv.Wait(lock)` from a TaskGroup-style `group.Wait()`.
  bool has_args = false;
  // Resolved identities of locks held when the call executes (acquisition
  // order preserved; innermost last).
  std::vector<std::string> held;
};

// One lock acquisition (RAII MutexLock/WriterMutexLock/ReaderMutexLock or a
// manual .Lock() call).
struct LockAcquire {
  std::string mutex;  // resolved identity, see ResolveMutexId in model.cc
  int line = 0;
  size_t tok_index = 0;
  bool reader = false;  // shared acquisition (ReaderMutexLock/ReaderLock)
  // Locks already held when this one was acquired (lock-order edges).
  std::vector<std::string> held_before;
};

struct FunctionModel {
  std::string cls;   // enclosing class ("" for free functions)
  std::string name;  // unqualified name
  std::string file;  // display path of the defining file
  int line = 0;      // line of the definition header

  std::string Qualified() const { return cls.empty() ? name : cls + "::" + name; }

  // Mutexes required on entry (REQUIRES on the definition; the program
  // merge adds REQUIRES from the in-class declaration).
  std::vector<std::string> requires_entry;

  std::vector<CallSite> calls;
  std::vector<LockAcquire> acquires;

  // Declared types of parameters and block-scope locals (`Database* db`,
  // `BessColumn out = ...`), used to resolve member-call receivers. Smart
  // pointers record the pointee (`std::unique_ptr<Database> db` => Database).
  std::map<std::string, std::string> local_types;

  // Token indices of protocol-relevant identifiers seen in the body, for
  // the vis-cache and checker-hook state machines.
  std::vector<size_t> viskey_tokens;        // VisKey / MakeKey
  std::vector<size_t> checker_get_tokens;   // GetCheckerHook
  // Token indices of ebr::Guard declarations: EBR-protected reads after
  // one of these run under a live pin.
  std::vector<size_t> ebr_guard_tokens;

  // A `delete expr` / `free(ptr)` site with the best-known pointee type
  // ("" when the expression's type could not be resolved). Sites on
  // '// ebr-deleter'-marked lines are not recorded.
  struct EbrDeleteSite {
    int line = 0;
    size_t tok_index = 0;
    std::string type;
  };
  std::vector<EbrDeleteSite> ebr_deletes;
};

struct FileModel {
  FileClass cls;
  std::string display_path;
  std::vector<FunctionModel> functions;
  // class name -> Mutex/SharedMutex member names declared in that class.
  // Key "" holds file-scope (global / function-local) declarations.
  std::map<std::string, std::set<std::string>> mutex_decls;
  // class name -> data member -> declared class-like type (smart pointers
  // record the pointee). Drives member-call receiver resolution.
  std::map<std::string, std::map<std::string, std::string>> member_types;
  // class -> method -> mutex args of REQUIRES on the in-class declaration.
  std::map<std::string, std::map<std::string, std::vector<std::string>>>
      requires_decls;
  // Copied from the SourceFile so program passes can honor waivers.
  std::map<int, std::set<std::string>> waivers;

  bool Waived(int line, const std::string& rule) const;
};

// Builds the semantic model of one tokenized file.
FileModel ExtractModel(const SourceFile& f);

}  // namespace aosilint
