#include "aosi_lint/rules.h"

#include <cctype>

namespace aosilint {

const std::vector<RuleInfo>& Rules() {
  static const std::vector<RuleInfo> kRules = {
      {"atomic-memory-order",
       "std::atomic loads/stores/RMWs must pass an explicit std::memory_order; "
       "operator forms (++, +=, =) on atomics are forbidden; relaxed RMWs in "
       "src/ need a '// relaxed: <why>' justification comment, except in "
       "src/obs/ where relaxed instrument writes are the documented policy "
       "(docs/OBSERVABILITY.md)",
       false},
      {"epoch-compare",
       "raw comparisons of epoch-like values (identifiers containing epoch/lce/"
       "lse/horizon) are only allowed in src/aosi/epoch*; use the named helpers "
       "(IsVisibleAt, HappensBefore, ...) from src/aosi/epoch.h. Also covers "
       "std::min/std::max applied to epoch operands: use MinEpoch/MaxEpoch, "
       "which state the epoch-order intent",
       false},
      {"naked-mutex",
       "std::mutex/std::shared_mutex/std::condition_variable/std::*_lock are "
       "forbidden outside src/common/mutex.h; use the annotated wrappers",
       false},
      {"mutex-across-rpc",
       "cluster code must not hold a MutexLock across a Node RPC/broadcast "
       "call (Handle*, DeliverOrQueue) within one function body (the "
       "whole-program hold-across-blocking pass covers deeper call chains)",
       false},
      {"checker-hook",
       "the process-global checker-hook slot (internal::CheckerHookSlot) may "
       "only be touched inside src/aosi/checker_hook.h; install/read hooks via "
       "SetCheckerHook()/GetCheckerHook(), which carry the release/acquire "
       "orders the hook protocol requires (raw slot access would let an "
       "unordered read observe a half-constructed checker)",
       false},
      {"simd-isolation",
       "raw SIMD intrinsics (_mm*/vld1q*-style identifiers, immintrin.h/"
       "arm_neon.h includes, __builtin_cpu_supports) are forbidden in src/ "
       "outside src/common/simd.*; kernels go through the "
       "simd::ActiveKernels() dispatch table so every call site keeps the "
       "scalar fallback and the backends stay differentially testable",
       false},
      {"lock-cycle",
       "whole-program lock-order graph: an edge A->B is recorded whenever B "
       "is acquired (directly or through any call depth) while A is held; "
       "any cycle is a potential deadlock and is reported with the full "
       "witness path across translation units",
       true},
      {"hold-across-blocking",
       "no lock may be held while calling -- through any call depth -- into "
       "cluster RPC (Handle*, DeliverOrQueue), TaskGroup::Wait, or a "
       "condition-variable wait. A CondVar wait under exactly the one lock "
       "it releases is the legitimate pattern and exempt",
       true},
      {"vis-cache-protocol",
       "visibility-cache discipline: every VisibilityCache::Publish call is "
       "dominated by a versioned VisKey build (MakeKey) in the same function, "
       "and every epoch-history mutation in src/storage (RecordAppend/"
       "RecordDelete/InstallRebuilt) clears the brick's visibility cache "
       "before returning",
       true},
      {"ebr-guard",
       "EBR reclamation discipline (common/ebr.h): calls returning "
       "EBR-protected pointers (VisibilityCache::Lookup, "
       "EpochVector::PinnedSnapshot) must be dominated by an ebr::Guard "
       "declaration in the same function, and delete/free of a "
       "retire-managed type (vis-cache Entry, EpochVector Rep, Brick) is "
       "only legal on a line marked as an EBR deleter — anything else can "
       "free memory a pinned reader still holds",
       true},
      {"checker-hook-gate",
       "checker-hook methods (OnBegin, OnFinish, OnScanObservation, ...) may "
       "only be invoked behind a dominating GetCheckerHook() enabled-load in "
       "the same function, keeping the hooks-off cost to one relaxed load",
       true},
  };
  return kRules;
}

// ---------------------------------------------------------------------------
// Rule: atomic-memory-order
// ---------------------------------------------------------------------------

namespace {

const std::set<std::string>& AtomicMemberOps() {
  static const std::set<std::string> kOps = {
      "load",          "store",          "exchange",
      "fetch_add",     "fetch_sub",      "fetch_and",
      "fetch_or",      "fetch_xor",      "compare_exchange_weak",
      "compare_exchange_strong"};
  return kOps;
}

// Read-modify-write subset: relaxed ordering on these loses the usual
// synchronizes-with edge, so src/ callers must justify it in a comment.
const std::set<std::string>& AtomicRmwOps() {
  static const std::set<std::string> kOps = {
      "exchange",  "fetch_add", "fetch_sub",
      "fetch_and", "fetch_or",  "fetch_xor"};
  return kOps;
}

}  // namespace

void CollectAtomicNames(const SourceFile& f, std::set<std::string>* names,
                        std::set<const Token*>* decl_sites) {
  const auto& toks = f.toks;
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].text != "atomic" || toks[i + 1].text != "<") continue;
    int depth = 0;
    size_t j = i + 1;
    for (; j < toks.size(); ++j) {
      if (toks[j].text == "<") ++depth;
      else if (toks[j].text == ">") { if (--depth == 0) break; }
      else if (toks[j].text == ">>") { depth -= 2; if (depth <= 0) break; }
      else if (toks[j].text == ";") break;
    }
    if (j + 1 >= toks.size() || depth > 0) continue;
    const Token& name = toks[j + 1];
    if (name.kind != TokKind::kIdent) continue;
    if (j + 2 < toks.size()) {
      const std::string& after = toks[j + 2].text;
      if (after == ";" || after == "{" || after == "=" || after == "," ||
          after == ")" || after == "(") {
        names->insert(name.text);
        decl_sites->insert(&name);
      }
    }
  }
}

namespace {

void CheckAtomicMemoryOrder(const SourceFile& f,
                            const std::set<std::string>& atomic_names,
                            const std::set<const Token*>& decl_sites,
                            std::vector<Finding>* out) {
  const auto& toks = f.toks;
  for (size_t i = 1; i + 1 < toks.size(); ++i) {
    const Token& t = toks[i];
    // Member-call form: x.load(...), p->fetch_add(...)
    if (t.kind == TokKind::kIdent && AtomicMemberOps().count(t.text) &&
        (toks[i - 1].text == "." || toks[i - 1].text == "->") &&
        toks[i + 1].text == "(") {
      int depth = 0;
      bool has_order = false;
      bool is_relaxed = false;
      for (size_t j = i + 1; j < toks.size(); ++j) {
        if (toks[j].text == "(") ++depth;
        else if (toks[j].text == ")") { if (--depth == 0) break; }
        else if (toks[j].kind == TokKind::kIdent &&
                 toks[j].text.rfind("memory_order", 0) == 0) {
          has_order = true;
          if (toks[j].text == "memory_order_relaxed") is_relaxed = true;
        }
      }
      if (!has_order) {
        out->push_back({f.display_path, t.line, "atomic-memory-order",
                        "atomic ." + t.text +
                            "() without an explicit std::memory_order",
                        {}});
      } else if (is_relaxed && AtomicRmwOps().count(t.text) && f.cls.in_src &&
                 !f.cls.in_obs && !f.relaxed_lines.count(t.line)) {
        // Carve-out: src/obs instruments are relaxed by documented policy
        // (monotonic tallies read via acquire snapshots); everyone else
        // explains why the missing synchronizes-with edge is safe.
        out->push_back(
            {f.display_path, t.line, "atomic-memory-order",
             "relaxed ." + t.text +
                 "() needs a '// relaxed: <why>' justification comment "
                 "(src/obs instruments are exempt; docs/OBSERVABILITY.md)",
             {}});
      }
      continue;
    }
    // Operator form on a known atomic variable: ++x, x++, x += 1, x = v.
    if (t.kind == TokKind::kIdent && atomic_names.count(t.text) &&
        !decl_sites.count(&t)) {
      const std::string& next = toks[i + 1].text;
      const std::string& prev = toks[i - 1].text;
      static const std::set<std::string> kCompound = {"++", "--", "+=", "-=",
                                                      "&=", "|=", "^="};
      const bool op_after = kCompound.count(next) || next == "=";
      const bool op_before = prev == "++" || prev == "--";
      // `name =` only counts when it is an assignment, not `==`/`<=` (those
      // are separate tokens) and not a named-argument-like context.
      if (op_after || op_before) {
        out->push_back(
            {f.display_path, t.line, "atomic-memory-order",
             "operator form on std::atomic '" + t.text +
                 "' is an implicit seq_cst access; use .load/.store/.fetch_* "
                 "with an explicit std::memory_order",
             {}});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: epoch-compare
// ---------------------------------------------------------------------------

bool NameTouchesEpoch(const std::string& name) {
  static const std::set<std::string> kExcluded = {
      // Type names (template args, declarations) and lexical near-misses.
      "Epoch",      "EpochSet",   "EpochVector", "EpochClock",
      "EpochEntry", "EpochRun",   "EpochVectorStats",
      "false",      "else",
  };
  if (kExcluded.count(name)) return false;
  std::string lower;
  lower.reserve(name.size());
  for (char c : name)
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return lower.find("epoch") != std::string::npos ||
         lower.find("lce") != std::string::npos ||
         lower.find("lse") != std::string::npos ||
         lower.find("horizon") != std::string::npos;
}

// Walks back from toks[i] (exclusive) to the identifier naming the left
// operand: the member/function name directly before the operator, skipping
// one balanced ()/[] group.
const Token* LeftOperand(const std::vector<Token>& toks, size_t i) {
  if (i == 0) return nullptr;
  size_t k = i - 1;
  if (toks[k].text == ")" || toks[k].text == "]") {
    const std::string open = toks[k].text == ")" ? "(" : "[";
    const std::string close = toks[k].text;
    int depth = 0;
    while (k > 0) {
      if (toks[k].text == close) ++depth;
      else if (toks[k].text == open && --depth == 0) break;
      --k;
    }
    if (k == 0) return nullptr;
    --k;
  }
  return toks[k].kind == TokKind::kIdent ? &toks[k] : nullptr;
}

// Walks forward from toks[i] (exclusive), skipping unary operators, to the
// last identifier of the right operand's member chain
// (`a < txn->epoch` -> epoch).
const Token* RightOperand(const std::vector<Token>& toks, size_t i) {
  size_t j = i + 1;
  int skipped = 0;
  while (j < toks.size() && skipped < 4 &&
         (toks[j].text == "*" || toks[j].text == "&" || toks[j].text == "-" ||
          toks[j].text == "+" || toks[j].text == "!" || toks[j].text == "~" ||
          toks[j].text == "(")) {
    ++j;
    ++skipped;
  }
  if (j >= toks.size() || toks[j].kind != TokKind::kIdent) return nullptr;
  // Follow the member chain: std::foo, a.b->c
  const Token* last = &toks[j];
  while (j + 2 < toks.size() &&
         (toks[j + 1].text == "." || toks[j + 1].text == "->" ||
          toks[j + 1].text == "::") &&
         toks[j + 2].kind == TokKind::kIdent) {
    j += 2;
    last = &toks[j];
  }
  return last;
}

void CheckEpochCompare(const SourceFile& f, std::vector<Finding>* out) {
  static const std::set<std::string> kCompareOps = {"<",  ">",  "<=",
                                                    ">=", "==", "!="};
  const auto& toks = f.toks;
  const std::vector<bool> is_template = MarkTemplateAngles(toks);
  for (size_t i = 1; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kPunct || !kCompareOps.count(toks[i].text))
      continue;
    if (is_template[i]) continue;
    const Token* lhs = LeftOperand(toks, i);
    const Token* rhs = RightOperand(toks, i);
    const Token* hit = nullptr;
    if (lhs && NameTouchesEpoch(lhs->text)) hit = lhs;
    else if (rhs && NameTouchesEpoch(rhs->text)) hit = rhs;
    if (hit == nullptr) continue;
    out->push_back(
        {f.display_path, toks[i].line, "epoch-compare",
         "raw epoch comparison '" + hit->text + " " + toks[i].text +
             " ...' outside src/aosi/epoch*; use the named helpers from "
             "src/aosi/epoch.h (IsVisibleAt, HappensBefore, AtOrBefore, ...)",
         {}});
  }

  // std::min / std::max over epoch operands order epochs with raw integer
  // comparison just as the operators above do (this is exactly the purge
  // run-merge bug): flag them and point at MinEpoch/MaxEpoch.
  for (size_t i = 2; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent ||
        (toks[i].text != "min" && toks[i].text != "max")) {
      continue;
    }
    if (toks[i - 1].text != "::" || toks[i - 2].text != "std") continue;
    // Skip an explicit template argument list (std::max<Epoch>(...)).
    size_t j = i + 1;
    if (j < toks.size() && toks[j].text == "<") {
      int angle = 0;
      for (; j < toks.size(); ++j) {
        if (toks[j].text == "<") ++angle;
        else if (toks[j].text == ">") { if (--angle == 0) { ++j; break; } }
        else if (toks[j].text == ">>") { angle -= 2; if (angle <= 0) { ++j; break; } }
        else if (toks[j].text == ";" || toks[j].text == "{") break;
      }
    }
    if (j >= toks.size() || toks[j].text != "(") continue;
    const Token* hit = nullptr;
    int depth = 0;
    for (size_t k = j; k < toks.size(); ++k) {
      if (toks[k].text == "(") ++depth;
      else if (toks[k].text == ")") { if (--depth == 0) break; }
      else if (toks[k].kind == TokKind::kIdent &&
               NameTouchesEpoch(toks[k].text)) {
        hit = &toks[k];
        break;
      }
    }
    if (hit == nullptr) continue;
    out->push_back(
        {f.display_path, toks[i].line, "epoch-compare",
         "std::" + toks[i].text + " over epoch operand '" + hit->text +
             "' outside src/aosi/epoch*; ordering epochs needs "
             "MinEpoch/MaxEpoch from src/aosi/epoch.h",
         {}});
  }
}

// ---------------------------------------------------------------------------
// Rule: naked-mutex
// ---------------------------------------------------------------------------

void CheckNakedMutex(const SourceFile& f, std::vector<Finding>* out) {
  static const std::set<std::string> kForbidden = {
      "mutex",         "shared_mutex",       "recursive_mutex",
      "timed_mutex",   "recursive_timed_mutex",
      "condition_variable", "condition_variable_any",
      "lock_guard",    "unique_lock",        "shared_lock",
      "scoped_lock"};
  const auto& toks = f.toks;
  for (size_t i = 2; i < toks.size(); ++i) {
    if (toks[i].kind == TokKind::kIdent && kForbidden.count(toks[i].text) &&
        toks[i - 1].text == "::" && toks[i - 2].text == "std") {
      out->push_back({f.display_path, toks[i].line, "naked-mutex",
                      "std::" + toks[i].text +
                          " outside src/common/mutex.h; use the annotated "
                          "wrappers (Mutex, MutexLock, CondVar, ...)",
                      {}});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: mutex-across-rpc
// ---------------------------------------------------------------------------

void CheckMutexAcrossRpc(const SourceFile& f, std::vector<Finding>* out) {
  static const std::set<std::string> kLockTypes = {
      "MutexLock", "WriterMutexLock", "ReaderMutexLock", "lock_guard",
      "unique_lock", "scoped_lock"};
  const auto& toks = f.toks;
  int depth = 0;
  std::vector<int> lock_depths;  // brace depth at which each live lock lives
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.text == "{") {
      ++depth;
      continue;
    }
    if (t.text == "}") {
      --depth;
      while (!lock_depths.empty() && lock_depths.back() > depth)
        lock_depths.pop_back();
      continue;
    }
    if (t.kind != TokKind::kIdent) continue;
    // RAII lock declaration: `MutexLock lock(mu);` / `MutexLock lock{mu};`
    if (kLockTypes.count(t.text) && i + 2 < toks.size() &&
        toks[i + 1].kind == TokKind::kIdent &&
        (toks[i + 2].text == "(" || toks[i + 2].text == "{")) {
      lock_depths.push_back(depth);
      continue;
    }
    if (lock_depths.empty()) continue;
    // RPC/broadcast call while a lock is live in an enclosing scope.
    const bool is_handle = t.text.size() > 6 && t.text.rfind("Handle", 0) == 0 &&
                           std::isupper(static_cast<unsigned char>(t.text[6]));
    const bool is_rpc = is_handle || t.text == "DeliverOrQueue";
    if (is_rpc && i + 1 < toks.size() && toks[i + 1].text == "(") {
      out->push_back({f.display_path, t.line, "mutex-across-rpc",
                      "RPC/broadcast call '" + t.text +
                          "' while holding a lock; release the lock before "
                          "calling into cluster::Node",
                      {}});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: checker-hook
// ---------------------------------------------------------------------------

void CheckCheckerHookSlot(const SourceFile& f, std::vector<Finding>* out) {
  const auto& toks = f.toks;
  for (const Token& t : toks) {
    if (t.kind == TokKind::kIdent && t.text == "CheckerHookSlot") {
      out->push_back(
          {f.display_path, t.line, "checker-hook",
           "direct access to the checker-hook slot outside "
           "src/aosi/checker_hook.h; use GetCheckerHook()/SetCheckerHook(), "
           "which carry the acquire/release memory orders",
           {}});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: simd-isolation
// ---------------------------------------------------------------------------

void CheckSimdIsolation(const SourceFile& f, std::vector<Finding>* out) {
  for (const Token& t : f.toks) {
    if (t.kind != TokKind::kIdent) continue;
    const std::string& s = t.text;
    // x86 intrinsics (_mm_*, _mm256_*) and vector types (__m128/__m256/...),
    // the intrinsic headers, and the CPUID probe. NEON intrinsics are only
    // reachable through <arm_neon.h>, so the include token covers them.
    const bool x86_intrinsic =
        s.rfind("_mm", 0) == 0 ||
        (s.rfind("__m", 0) == 0 && s.size() > 3 && s[3] >= '0' && s[3] <= '9');
    const bool simd_header = s == "immintrin" || s == "arm_neon";
    const bool cpu_probe = s == "__builtin_cpu_supports";
    if (x86_intrinsic || simd_header || cpu_probe) {
      out->push_back({f.display_path, t.line, "simd-isolation",
                      "raw SIMD intrinsic/header/CPU probe '" + s +
                          "' outside src/common/simd.*; call through the "
                          "simd::ActiveKernels() dispatch table instead",
                      {}});
    }
  }
}

}  // namespace

void LintFile(const SourceFile& f, const std::set<std::string>& atomic_names,
              const std::set<const Token*>& decl_sites,
              std::vector<Finding>* findings) {
  std::vector<Finding> raw;
  CheckAtomicMemoryOrder(f, atomic_names, decl_sites, &raw);
  if (f.cls.in_src && !f.cls.epoch_zone) CheckEpochCompare(f, &raw);
  if (f.cls.in_src && !f.cls.mutex_header) CheckNakedMutex(f, &raw);
  if (f.cls.in_cluster) CheckMutexAcrossRpc(f, &raw);
  if (!f.cls.checker_hook_header) CheckCheckerHookSlot(f, &raw);
  if (f.cls.in_src && !f.cls.simd_impl) CheckSimdIsolation(f, &raw);
  for (auto& finding : raw) {
    if (f.Waived(finding.line, finding.rule)) continue;
    findings->push_back(std::move(finding));
  }
}

}  // namespace aosilint
