#include "aosi_lint/program.h"

#include <algorithm>
#include <cctype>
#include <deque>
#include <set>

namespace aosilint {

namespace {

constexpr int kMaxFixpointRounds = 12;
constexpr size_t kMaxWitnessDepth = 12;

bool IsRpcName(const std::string& name) {
  if (name == "DeliverOrQueue") return true;
  return name.size() > 6 && name.rfind("Handle", 0) == 0 &&
         std::isupper(static_cast<unsigned char>(name[6]));
}

bool IsWaitName(const std::string& name) {
  return name == "Wait" || name == "WaitFor" || name == "WaitUntil";
}

enum class BlockKind { kNone, kCondWait, kRpc, kGroupWait };

// How a call site blocks, judged from the site alone. A CondVar-style wait
// (`cv.Wait(lock)`, with arguments) releases the innermost lock while
// waiting; a TaskGroup-style `group.Wait()` (no arguments) releases
// nothing.
BlockKind DirectBlocking(const CallSite& c) {
  if (IsRpcName(c.name)) return BlockKind::kRpc;
  if (IsWaitName(c.name) && c.member_call) {
    return c.has_args ? BlockKind::kCondWait : BlockKind::kGroupWait;
  }
  return BlockKind::kNone;
}

std::string JoinHeld(const std::vector<std::string>& held) {
  std::string out;
  for (const auto& h : held) {
    if (!out.empty()) out += ", ";
    out += h;
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// ProgramModel: merge + identity resolution
// ---------------------------------------------------------------------------

ProgramModel::ProgramModel(std::vector<FileModel> files)
    : files_(std::move(files)) {
  ResolveMutexIdentities();
  ApplyDeclaredRequires();
  BuildIndexes();
}

void ProgramModel::ResolveMutexIdentities() {
  // Union of class-scoped mutex declarations across all files: the member
  // is usually declared in a header while the acquires live in the .cc.
  for (const FileModel& fm : files_) {
    for (const auto& [cls, members] : fm.mutex_decls) {
      if (cls.empty()) continue;
      for (const auto& m : members) mutex_classes_[m].insert(cls);
    }
  }
  for (FileModel& fm : files_) {
    // File-scope declarations (globals, locals of free functions).
    const std::set<std::string>* file_scope = nullptr;
    auto fs = fm.mutex_decls.find("");
    if (fs != fm.mutex_decls.end()) file_scope = &fs->second;

    for (FunctionModel& fn : fm.functions) {
      auto resolve = [&](const std::string& name) -> std::string {
        auto it = mutex_classes_.find(name);
        if (it != mutex_classes_.end()) {
          if (!fn.cls.empty() && it->second.count(fn.cls))
            return fn.cls + "::" + name;
          if (it->second.size() == 1) return *it->second.begin() + "::" + name;
        }
        if (file_scope != nullptr && file_scope->count(name))
          return fm.cls.rel + "::" + name;
        // Ambiguous or undeclared (e.g. a mutex reference parameter): the
        // bare name is kept and acts as a shared bucket; qualify the common
        // case by the enclosing class to avoid cross-class aliasing.
        if (it != mutex_classes_.end() && it->second.size() > 1 &&
            !fn.cls.empty())
          return fn.cls + "::" + name;
        return name;
      };
      for (auto& r : fn.requires_entry) r = resolve(r);
      for (auto& a : fn.acquires) {
        a.mutex = resolve(a.mutex);
        for (auto& h : a.held_before) h = resolve(h);
      }
      for (auto& c : fn.calls) {
        for (auto& h : c.held) h = resolve(h);
      }
    }
  }
}

void ProgramModel::ApplyDeclaredRequires() {
  // REQUIRES on the in-class declaration covers the out-of-line definition
  // (Clang TSA semantics); merge them into the definition's entry set and
  // into every held-snapshot.
  std::map<std::string, std::vector<std::string>> declared;  // Cls::Name
  for (const FileModel& fm : files_) {
    for (const auto& [cls, methods] : fm.requires_decls) {
      for (const auto& [method, args] : methods) {
        auto& dst = declared[cls + "::" + method];
        dst.insert(dst.end(), args.begin(), args.end());
      }
    }
  }
  for (FileModel& fm : files_) {
    for (FunctionModel& fn : fm.functions) {
      if (fn.cls.empty()) continue;
      auto it = declared.find(fn.Qualified());
      if (it == declared.end()) continue;
      for (const std::string& raw : it->second) {
        // Declaration args are unresolved member names; the declaring class
        // is the function's own class by construction.
        std::string resolved = raw;
        auto mc = mutex_classes_.find(raw);
        if (mc != mutex_classes_.end() &&
            (mc->second.count(fn.cls) || mc->second.size() == 1)) {
          resolved = (mc->second.count(fn.cls) ? fn.cls
                                               : *mc->second.begin()) +
                     "::" + raw;
        }
        if (std::find(fn.requires_entry.begin(), fn.requires_entry.end(),
                      resolved) != fn.requires_entry.end())
          continue;
        fn.requires_entry.push_back(resolved);
        for (auto& a : fn.acquires) a.held_before.push_back(resolved);
        for (auto& c : fn.calls) c.held.push_back(resolved);
      }
    }
  }
}

void ProgramModel::BuildIndexes() {
  for (const FileModel& fm : files_) {
    by_path_[fm.display_path] = &fm;
    for (const FunctionModel& fn : fm.functions) {
      by_bare_[fn.name].push_back(&fn);
      by_qual_[fn.Qualified()].push_back(&fn);
    }
    for (const auto& [cls, members] : fm.member_types) {
      for (const auto& [member, type] : members) {
        member_types_[cls][member] = type;
        member_type_any_[member].insert(type);
      }
    }
  }
}

const std::vector<const FunctionModel*>& ProgramModel::ByBareName(
    const std::string& name) const {
  auto it = by_bare_.find(name);
  return it == by_bare_.end() ? empty_ : it->second;
}

std::vector<const FunctionModel*> ProgramModel::ResolveCall(
    const FunctionModel& caller, const CallSite& call) const {
  // Explicit `Cls::F(...)`.
  if (call.class_qualified && !call.receiver.empty() &&
      call.receiver != "std") {
    auto it = by_qual_.find(call.receiver + "::" + call.name);
    if (it != by_qual_.end()) return it->second;
    return {};
  }
  // Unqualified `F(...)` or `this->F(...)` inside a class: prefer the
  // same-class method when one exists.
  const bool this_call = call.member_call && call.receiver == "this";
  if ((!call.member_call || this_call) && !caller.cls.empty()) {
    auto it = by_qual_.find(caller.cls + "::" + call.name);
    if (it != by_qual_.end()) return it->second;
  }
  if (this_call) return {};

  if (call.member_call) {
    // Type the receiver: local/param declaration, then a data member of the
    // caller's class, then a member name declared by exactly one class.
    std::string type;
    if (!call.receiver.empty()) {
      auto lt = caller.local_types.find(call.receiver);
      if (lt != caller.local_types.end()) {
        type = lt->second;
      } else if (!caller.cls.empty()) {
        auto ct = member_types_.find(caller.cls);
        if (ct != member_types_.end()) {
          auto mt = ct->second.find(call.receiver);
          if (mt != ct->second.end()) type = mt->second;
        }
      }
      if (type.empty()) {
        auto any = member_type_any_.find(call.receiver);
        if (any != member_type_any_.end() && any->second.size() == 1)
          type = *any->second.begin();
      }
    }
    if (!type.empty()) {
      auto it = by_qual_.find(type + "::" + call.name);
      if (it != by_qual_.end()) return it->second;
      // Known type without this method: unmodeled (std::, interface-only);
      // guessing here would alias unrelated classes into the lock graph.
      return {};
    }
    // Untyped receiver: trust only a program-unique method name.
    auto it = by_bare_.find(call.name);
    if (it != by_bare_.end() && it->second.size() == 1) return it->second;
    return {};
  }

  // Free-function call: the bare name, when unambiguous.
  auto it = by_bare_.find(call.name);
  if (it != by_bare_.end() && it->second.size() == 1) return it->second;
  return {};
}

bool ProgramModel::Waived(const std::string& file, int line,
                          const std::string& rule) const {
  auto it = by_path_.find(file);
  return it != by_path_.end() && it->second->Waived(line, rule);
}

// ---------------------------------------------------------------------------
// Pass 1: lock-order graph + cycle detection
// ---------------------------------------------------------------------------

namespace {

struct LockEdge {
  std::string from;
  std::string to;
  // Full witness: hold site / call chain / final acquire site.
  std::vector<Finding::Site> witness;
};

// For every function: the mutexes it may acquire through any call depth,
// with one representative witness chain ending at the acquire site.
using TransAcquires =
    std::map<const FunctionModel*, std::map<std::string, std::vector<Finding::Site>>>;

TransAcquires ComputeTransitiveAcquires(const ProgramModel& pm) {
  TransAcquires trans;
  for (const FileModel& fm : pm.files()) {
    for (const FunctionModel& fn : fm.functions) {
      for (const LockAcquire& a : fn.acquires) {
        auto& slot = trans[&fn];
        if (!slot.count(a.mutex)) {
          slot[a.mutex] = {{fn.file, a.line,
                            fn.Qualified() + " acquires " + a.mutex}};
        }
      }
    }
  }
  for (int round = 0; round < kMaxFixpointRounds; ++round) {
    bool changed = false;
    for (const FileModel& fm : pm.files()) {
      for (const FunctionModel& fn : fm.functions) {
        for (const CallSite& c : fn.calls) {
          for (const FunctionModel* g : pm.ResolveCall(fn, c)) {
            if (g == &fn) continue;
            auto git = trans.find(g);
            if (git == trans.end()) continue;
            for (const auto& [mutex, path] : git->second) {
              auto& slot = trans[&fn];
              if (slot.count(mutex)) continue;
              if (path.size() + 1 > kMaxWitnessDepth) continue;
              std::vector<Finding::Site> chain = {
                  {fn.file, c.line,
                   fn.Qualified() + " calls " + g->Qualified()}};
              chain.insert(chain.end(), path.begin(), path.end());
              slot[mutex] = std::move(chain);
              changed = true;
            }
          }
        }
      }
    }
    if (!changed) break;
  }
  return trans;
}

std::vector<LockEdge> BuildLockOrderEdges(const ProgramModel& pm,
                                          const TransAcquires& trans) {
  std::vector<LockEdge> edges;
  std::set<std::pair<std::string, std::string>> seen;
  auto add = [&](const std::string& from, const std::string& to,
                 std::vector<Finding::Site> witness) {
    if (from == to) return;
    // An edge is waived (declared an intentional ordering) at its final
    // acquire site.
    const Finding::Site& acquire_site = witness.back();
    if (pm.Waived(acquire_site.file, acquire_site.line, "lock-cycle")) return;
    if (!seen.insert({from, to}).second) return;
    edges.push_back({from, to, std::move(witness)});
  };
  for (const FileModel& fm : pm.files()) {
    for (const FunctionModel& fn : fm.functions) {
      // Direct: B acquired while A held in the same body (including locks
      // required on entry).
      for (const LockAcquire& a : fn.acquires) {
        for (const std::string& h : a.held_before) {
          add(h, a.mutex,
              {{fn.file, a.line,
                fn.Qualified() + " acquires " + a.mutex + " while holding " +
                    h}});
        }
      }
      // Interprocedural: a callee (transitively) acquires B while the
      // caller holds A across the call.
      for (const CallSite& c : fn.calls) {
        if (c.held.empty()) continue;
        for (const FunctionModel* g : pm.ResolveCall(fn, c)) {
          if (g == &fn) continue;
          auto git = trans.find(g);
          if (git == trans.end()) continue;
          for (const auto& [mutex, path] : git->second) {
            for (const std::string& h : c.held) {
              if (h == mutex) continue;
              std::vector<Finding::Site> witness = {
                  {fn.file, c.line,
                   fn.Qualified() + " holds " + h + " and calls " +
                       g->Qualified()}};
              witness.insert(witness.end(), path.begin(), path.end());
              add(h, mutex, std::move(witness));
            }
          }
        }
      }
    }
  }
  return edges;
}

}  // namespace

std::vector<Finding> CheckLockCycles(const ProgramModel& pm) {
  const TransAcquires trans = ComputeTransitiveAcquires(pm);
  const std::vector<LockEdge> edges = BuildLockOrderEdges(pm, trans);

  // Adjacency over mutex identities.
  std::map<std::string, std::vector<const LockEdge*>> adj;
  for (const LockEdge& e : edges) adj[e.from].push_back(&e);

  std::vector<Finding> findings;
  std::set<std::set<std::string>> reported;  // canonical cycle node sets
  for (const LockEdge& e : edges) {
    // A cycle through edge (from -> to) exists iff `from` is reachable from
    // `to`; BFS recovers the shortest return path.
    std::map<std::string, const LockEdge*> parent_edge;
    std::deque<std::string> queue = {e.to};
    std::set<std::string> visited = {e.to};
    bool closed = false;
    while (!queue.empty() && !closed) {
      const std::string node = queue.front();
      queue.pop_front();
      for (const LockEdge* next : adj[node]) {
        if (visited.count(next->to)) continue;
        visited.insert(next->to);
        parent_edge[next->to] = next;
        if (next->to == e.from) {
          closed = true;
          break;
        }
        queue.push_back(next->to);
      }
    }
    if (!closed) continue;

    // Reconstruct the return path to -> ... -> from.
    std::vector<const LockEdge*> cycle = {&e};
    std::vector<const LockEdge*> back;
    for (std::string node = e.from; node != e.to;) {
      const LockEdge* pe = parent_edge[node];
      back.push_back(pe);
      node = pe->from;
    }
    cycle.insert(cycle.end(), back.rbegin(), back.rend());

    std::set<std::string> nodes;
    std::string order;
    for (const LockEdge* ce : cycle) {
      nodes.insert(ce->from);
      order += ce->from + " -> ";
    }
    order += e.from;
    if (!reported.insert(nodes).second) continue;

    Finding f;
    f.file = e.witness.back().file;
    f.line = e.witness.back().line;
    f.rule = "lock-cycle";
    f.message = "potential deadlock: lock-order cycle " + order +
                " (acquire both in one fixed order, or waive the edge at "
                "its acquire site with a written justification)";
    for (const LockEdge* ce : cycle) {
      for (const Finding::Site& s : ce->witness) f.related.push_back(s);
    }
    findings.push_back(std::move(f));
  }
  return findings;
}

// ---------------------------------------------------------------------------
// Pass 2: hold-across-blocking
// ---------------------------------------------------------------------------

namespace {

// For every function: one representative chain to a blocking site it may
// reach (empty map entry = cannot block).
std::map<const FunctionModel*, std::vector<Finding::Site>> ComputeMayBlock(
    const ProgramModel& pm) {
  std::map<const FunctionModel*, std::vector<Finding::Site>> may_block;
  for (const FileModel& fm : pm.files()) {
    for (const FunctionModel& fn : fm.functions) {
      for (const CallSite& c : fn.calls) {
        if (DirectBlocking(c) == BlockKind::kNone) continue;
        if (!may_block.count(&fn)) {
          may_block[&fn] = {{fn.file, c.line,
                             fn.Qualified() + " blocks in " + c.name + "()"}};
        }
      }
    }
  }
  for (int round = 0; round < kMaxFixpointRounds; ++round) {
    bool changed = false;
    for (const FileModel& fm : pm.files()) {
      for (const FunctionModel& fn : fm.functions) {
        if (may_block.count(&fn)) continue;
        for (const CallSite& c : fn.calls) {
          for (const FunctionModel* g : pm.ResolveCall(fn, c)) {
            if (g == &fn) continue;
            auto git = may_block.find(g);
            if (git == may_block.end()) continue;
            if (git->second.size() + 1 > kMaxWitnessDepth) continue;
            std::vector<Finding::Site> chain = {
                {fn.file, c.line, fn.Qualified() + " calls " + g->Qualified()}};
            chain.insert(chain.end(), git->second.begin(), git->second.end());
            may_block[&fn] = std::move(chain);
            changed = true;
            break;
          }
          if (may_block.count(&fn)) break;
        }
      }
    }
    if (!changed) break;
  }
  return may_block;
}

}  // namespace

std::vector<Finding> CheckHoldAcrossBlocking(const ProgramModel& pm) {
  const auto may_block = ComputeMayBlock(pm);
  std::vector<Finding> findings;
  std::set<std::pair<std::string, int>> seen;
  auto emit = [&](const FunctionModel& fn, const CallSite& c,
                  const std::string& what,
                  const std::vector<Finding::Site>& chain) {
    if (pm.Waived(fn.file, c.line, "hold-across-blocking")) return;
    if (!seen.insert({fn.file, c.line}).second) return;
    Finding f;
    f.file = fn.file;
    f.line = c.line;
    f.rule = "hold-across-blocking";
    f.message = fn.Qualified() + " holds " + JoinHeld(c.held) + " across " +
                what + "; release the lock first (a blocked holder stalls "
                "every contender and can deadlock against the waited-on "
                "work)";
    f.related = chain;
    findings.push_back(std::move(f));
  };

  for (const FileModel& fm : pm.files()) {
    for (const FunctionModel& fn : fm.functions) {
      for (const CallSite& c : fn.calls) {
        if (c.held.empty()) continue;
        switch (DirectBlocking(c)) {
          case BlockKind::kCondWait:
            // `cv.Wait(lock)` releases the innermost lock for the duration
            // of the wait — the canonical pattern. Outer locks stay held.
            if (c.held.size() >= 2) {
              emit(fn, c,
                   "a CondVar " + c.name + " that releases only the innermost "
                   "lock (" + c.held.back() + ")",
                   {});
            }
            break;
          case BlockKind::kRpc:
            emit(fn, c, "cluster RPC/broadcast '" + c.name + "'", {});
            break;
          case BlockKind::kGroupWait:
            emit(fn, c, "blocking " + c.name + "()", {});
            break;
          case BlockKind::kNone: {
            for (const FunctionModel* g : pm.ResolveCall(fn, c)) {
              auto git = may_block.find(g);
              if (git == may_block.end()) continue;
              emit(fn, c, "a call into " + g->Qualified() + ", which blocks",
                   git->second);
              break;
            }
            break;
          }
        }
      }
    }
  }
  return findings;
}

// ---------------------------------------------------------------------------
// Pass 3: vis-cache protocol state machine
// ---------------------------------------------------------------------------

std::vector<Finding> CheckVisCacheProtocol(const ProgramModel& pm) {
  std::vector<Finding> findings;
  for (const FileModel& fm : pm.files()) {
    const std::string& rel = fm.cls.rel;
    if (rel.rfind("src/", 0) != 0) continue;
    const bool cache_impl = rel.rfind("src/aosi/vis_cache", 0) == 0;
    for (const FunctionModel& fn : fm.functions) {
      // (a) Every Publish is dominated by a versioned VisKey build in the
      // same function: publishing a bitmap under a stale or hand-rolled key
      // would serve wrong visibility to every later hit.
      if (!cache_impl) {
        for (const CallSite& c : fn.calls) {
          if (c.name != "Publish" || !c.member_call) continue;
          const bool dominated =
              std::any_of(fn.viskey_tokens.begin(), fn.viskey_tokens.end(),
                          [&](size_t idx) { return idx < c.tok_index; });
          if (dominated) continue;
          if (fm.Waived(c.line, "vis-cache-protocol")) continue;
          findings.push_back(
              {fn.file, c.line, "vis-cache-protocol",
               fn.Qualified() + " publishes a visibility bitmap without a "
               "preceding VisibilityCache::MakeKey/VisKey build in the same "
               "function; the key must be derived from the same history "
               "version the bitmap was built against",
               {}});
        }
      }
      // (b) A history mutation must clear the brick's visibility cache
      // before returning; a stale cached bitmap would hide or resurrect
      // rows for every snapshot that hits it.
      if (rel.rfind("src/storage/", 0) == 0) {
        const CallSite* mutation = nullptr;
        bool has_clear = false;
        for (const CallSite& c : fn.calls) {
          if (c.member_call && (c.name == "RecordAppend" ||
                                c.name == "RecordDelete" ||
                                c.name == "InstallRebuilt")) {
            if (mutation == nullptr) mutation = &c;
          }
          if (c.member_call && c.name == "Clear") has_clear = true;
        }
        if (mutation != nullptr && !has_clear &&
            !fm.Waived(mutation->line, "vis-cache-protocol")) {
          findings.push_back(
              {fn.file, mutation->line, "vis-cache-protocol",
               fn.Qualified() + " mutates the epoch history (" +
                   mutation->name + ") without clearing the brick's "
                   "visibility cache before returning; cached bitmaps keyed "
                   "by the old history version would go stale",
               {}});
        }
      }
    }
  }
  return findings;
}

// ---------------------------------------------------------------------------
// Pass 4: checker-hook gate
// ---------------------------------------------------------------------------

std::vector<Finding> CheckCheckerHookGate(const ProgramModel& pm) {
  static const std::set<std::string> kHookMethods = {
      "OnBegin",      "OnFinish",          "OnScanObservation",
      "OnLseAdvance", "OnStaleRemoteBegin", "ShouldSample"};
  std::vector<Finding> findings;
  for (const FileModel& fm : pm.files()) {
    const std::string& rel = fm.cls.rel;
    if (rel.rfind("src/", 0) != 0) continue;
    // The checker implementation invokes its own methods freely; the hook
    // header defines the protocol.
    if (fm.cls.in_check || fm.cls.checker_hook_header) continue;
    for (const FunctionModel& fn : fm.functions) {
      for (const CallSite& c : fn.calls) {
        if (!c.member_call || !kHookMethods.count(c.name)) continue;
        const bool gated = std::any_of(
            fn.checker_get_tokens.begin(), fn.checker_get_tokens.end(),
            [&](size_t idx) { return idx < c.tok_index; });
        if (gated) continue;
        if (fm.Waived(c.line, "checker-hook-gate")) continue;
        findings.push_back(
            {fn.file, c.line, "checker-hook-gate",
             fn.Qualified() + " invokes checker hook " + c.name +
                 " without a dominating GetCheckerHook() enabled-load in the "
                 "same function; hook calls must stay behind the one-relaxed-"
                 "load gate so the hooks-off cost contract holds",
             {}});
      }
    }
  }
  return findings;
}

// ---------------------------------------------------------------------------
// Pass 5: EBR reclamation discipline
// ---------------------------------------------------------------------------

std::vector<Finding> CheckEbrGuard(const ProgramModel& pm) {
  // Member calls returning pointers that stay valid only while the calling
  // thread's ebr::Guard is live (common/ebr.h safety contract).
  static const std::set<std::string> kProtectedReads = {
      "Lookup", "PinnedSnapshot", "AcquireSnapshot"};
  // Types that die through ebr::Retire deleters: a raw delete/free of one
  // of these frees memory a pinned reader may still be traversing. Mirrors
  // the RetireDelete call sites (vis-cache Entry, EpochVector Rep, Brick,
  // dictionary DictSnapshot).
  static const std::set<std::string> kRetireManaged = {"Entry", "Rep", "Brick",
                                                       "DictSnapshot"};
  std::vector<Finding> findings;
  for (const FileModel& fm : pm.files()) {
    const std::string& rel = fm.cls.rel;
    if (rel.rfind("src/", 0) != 0) continue;
    // The collector itself and the EBR-protected structures' own
    // implementations are the protocol, not its users.
    const bool ebr_impl = rel.rfind("src/common/ebr", 0) == 0 ||
                          rel.rfind("src/aosi/vis_cache", 0) == 0 ||
                          rel.rfind("src/aosi/epoch_vector", 0) == 0 ||
                          rel.rfind("src/storage/dictionary", 0) == 0;
    if (ebr_impl) continue;
    for (const FunctionModel& fn : fm.functions) {
      for (const CallSite& c : fn.calls) {
        if (!c.member_call || !kProtectedReads.count(c.name)) continue;
        const bool guarded = std::any_of(
            fn.ebr_guard_tokens.begin(), fn.ebr_guard_tokens.end(),
            [&](size_t idx) { return idx < c.tok_index; });
        if (guarded) continue;
        if (fm.Waived(c.line, "ebr-guard")) continue;
        findings.push_back(
            {fn.file, c.line, "ebr-guard",
             fn.Qualified() + " calls " + c.name + "() without a "
             "dominating ebr::Guard in the same function; the returned "
             "pointer is EBR-protected and may be reclaimed the moment "
             "no pin covers it (common/ebr.h safety contract)",
             {}});
      }
      for (const FunctionModel::EbrDeleteSite& d : fn.ebr_deletes) {
        if (!kRetireManaged.count(d.type)) continue;
        if (fm.Waived(d.line, "ebr-guard")) continue;
        findings.push_back(
            {fn.file, d.line, "ebr-guard",
             fn.Qualified() + " deletes retire-managed type '" + d.type +
                 "' directly; route it through ebr::Retire/RetireDelete (a "
                 "pinned reader may still hold the pointer), or mark a "
                 "provably-safe free with the EBR deleter comment",
             {}});
      }
    }
  }
  return findings;
}

std::vector<Finding> RunProgramPasses(const ProgramModel& pm) {
  std::vector<Finding> findings;
  for (auto&& f : CheckLockCycles(pm)) findings.push_back(std::move(f));
  for (auto&& f : CheckHoldAcrossBlocking(pm)) findings.push_back(std::move(f));
  for (auto&& f : CheckVisCacheProtocol(pm)) findings.push_back(std::move(f));
  for (auto&& f : CheckCheckerHookGate(pm)) findings.push_back(std::move(f));
  for (auto&& f : CheckEbrGuard(pm)) findings.push_back(std::move(f));
  return findings;
}

}  // namespace aosilint
