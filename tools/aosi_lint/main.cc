// aosi_lint — AOSI-specific concurrency lint for the cubrick tree.
//
// A standalone token-based checker (no libclang) that enforces the rules
// Clang's -Wthread-safety cannot express. Per-file rules (rules.h) check one
// translation unit at a time; with --program, the whole-program passes
// (program.h) additionally merge every src/ file into one model and check
// lock ordering, hold-across-blocking, and the vis-cache / checker-hook
// protocols across translation units.
//
// Input is the set of sources named by a compile_commands.json plus a
// recursive scan of the conventional directories, so headers (which carry
// most epoch comparisons and mutex declarations) are covered too. A finding
// can be waived with an allow-comment naming the rule on the offending line,
// or alone on the line above it (exact syntax in docs/STATIC_ANALYSIS.md;
// not spelled out here so this header never registers as a waiver site).
// Program-level waivers anchor at the line the finding reports (the final
// acquire of a lock-order edge, the blocking call site).
//
// See docs/STATIC_ANALYSIS.md for the rule catalogue and how to add rules.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "aosi_lint/model.h"
#include "aosi_lint/program.h"
#include "aosi_lint/report.h"
#include "aosi_lint/rules.h"

namespace fs = std::filesystem;
using namespace aosilint;

namespace {

bool IsSourceExt(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".h" || ext == ".hpp" || ext == ".cpp";
}

// Minimal extraction of "file" entries from a compile_commands.json.
std::vector<std::string> FilesFromCompileCommands(const std::string& path) {
  std::vector<std::string> files;
  std::ifstream in(path, std::ios::binary);
  if (!in) return files;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();
  const std::string key = "\"file\"";
  size_t pos = 0;
  while ((pos = json.find(key, pos)) != std::string::npos) {
    size_t colon = json.find(':', pos + key.size());
    if (colon == std::string::npos) break;
    size_t q1 = json.find('"', colon + 1);
    if (q1 == std::string::npos) break;
    size_t q2 = q1 + 1;
    std::string value;
    while (q2 < json.size() && json[q2] != '"') {
      if (json[q2] == '\\' && q2 + 1 < json.size()) ++q2;
      value += json[q2++];
    }
    files.push_back(value);
    pos = q2;
  }
  return files;
}

std::string RelativeTo(const fs::path& root, const fs::path& p) {
  std::error_code ec;
  fs::path rel = fs::relative(p, root, ec);
  if (ec || rel.empty() || rel.native()[0] == '.') return p.generic_string();
  return rel.generic_string();
}

bool WriteFileOrDie(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::cerr << "aosi_lint: cannot write " << path << "\n";
    return false;
  }
  out << content;
  return true;
}

int RunSelftest(const std::string& dir);

int Usage() {
  std::cerr
      << "usage: aosi_lint [--root DIR] [--compile-commands FILE]\n"
      << "                 [--program] [--sarif FILE] [--waiver-report FILE]\n"
      << "                 [--list-rules] [--selftest DIR] [files...]\n\n"
      << "Without file arguments, lints src/, tests/, bench/, tools/ and\n"
      << "examples/ under --root (default: cwd), plus any sources listed in\n"
      << "compile_commands.json (auto-detected at <root>/build/).\n"
      << "--program additionally merges all src/ files into a whole-program\n"
      << "model and runs the cross-TU passes (lock-cycle,\n"
      << "hold-across-blocking, vis-cache-protocol, checker-hook-gate,\n"
      << "ebr-guard).\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string compile_commands;
  std::string selftest_dir;
  std::string sarif_path;
  std::string waiver_report_path;
  std::vector<std::string> file_args;
  bool list_rules = false;
  bool run_program = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) root = argv[++i];
    else if (arg == "--compile-commands" && i + 1 < argc)
      compile_commands = argv[++i];
    else if (arg == "--selftest" && i + 1 < argc) selftest_dir = argv[++i];
    else if (arg == "--sarif" && i + 1 < argc) sarif_path = argv[++i];
    else if (arg == "--waiver-report" && i + 1 < argc)
      waiver_report_path = argv[++i];
    else if (arg == "--program") run_program = true;
    else if (arg == "--list-rules") list_rules = true;
    else if (arg == "--help" || arg == "-h") return Usage();
    else if (!arg.empty() && arg[0] == '-') return Usage();
    else file_args.push_back(arg);
  }

  if (list_rules) {
    for (const RuleInfo& r : Rules()) {
      std::cout << r.name << (r.program ? " (program)" : "") << "\n    "
                << r.description << "\n";
    }
    return 0;
  }
  if (!selftest_dir.empty()) return RunSelftest(selftest_dir);

  const fs::path root_path(root);
  std::vector<std::pair<std::string, std::string>> inputs;  // path, rel
  std::set<std::string> seen;
  auto add = [&](const fs::path& p) {
    std::error_code ec;
    const std::string canon = fs::weakly_canonical(p, ec).generic_string();
    const std::string key = ec ? p.generic_string() : canon;
    // Fixtures intentionally violate the rules; they are exercised by
    // --selftest, not the tree scan.
    if (RelativeTo(root_path, p).rfind("tests/lint_fixtures/", 0) == 0)
      return;
    if (seen.insert(key).second)
      inputs.emplace_back(p.generic_string(), RelativeTo(root_path, p));
  };

  if (!file_args.empty()) {
    for (const auto& f : file_args) add(f);
  } else {
    for (const char* dir : {"src", "tests", "bench", "tools", "examples"}) {
      const fs::path d = root_path / dir;
      if (!fs::exists(d)) continue;
      for (const auto& entry : fs::recursive_directory_iterator(d)) {
        if (entry.is_regular_file() && IsSourceExt(entry.path()))
          add(entry.path());
      }
    }
    if (compile_commands.empty()) {
      const fs::path guess = root_path / "build" / "compile_commands.json";
      if (fs::exists(guess)) compile_commands = guess.generic_string();
    }
    if (!compile_commands.empty()) {
      for (const auto& f : FilesFromCompileCommands(compile_commands)) {
        const fs::path p(f);
        if (fs::exists(p) && IsSourceExt(p) &&
            RelativeTo(root_path, p).rfind("src/", 0) != std::string::npos)
          add(p);
      }
    }
  }

  std::vector<SourceFile> files;
  std::vector<WaiverSite> waiver_sites;
  files.reserve(inputs.size());
  for (const auto& [path, rel] : inputs) {
    SourceFile f;
    std::string raw;
    if (!LoadFile(path, rel, &f, &raw)) {
      std::cerr << "aosi_lint: cannot read " << path << "\n";
      return 2;
    }
    for (WaiverSite& s : CollectWaiverSites(raw, f.cls.rel))
      waiver_sites.push_back(std::move(s));
    files.push_back(std::move(f));
  }

  // Atomic variable names are declared in headers but used in the paired
  // source file, so key the collected names by path stem: x.h and x.cc land
  // in the same bucket.
  auto stem_of = [](const std::string& p) {
    const size_t dot = p.find_last_of('.');
    return dot == std::string::npos ? p : p.substr(0, dot);
  };
  std::map<std::string, std::set<std::string>> atomic_names_by_stem;
  std::set<const Token*> decl_sites;
  for (const SourceFile& f : files)
    CollectAtomicNames(f, &atomic_names_by_stem[stem_of(f.cls.rel)],
                       &decl_sites);

  std::vector<Finding> findings;
  for (const SourceFile& f : files)
    LintFile(f, atomic_names_by_stem[stem_of(f.cls.rel)], decl_sites,
             &findings);

  if (run_program) {
    // The whole-program model covers src/ only: test and bench sources
    // define same-named helpers that would pollute call-graph resolution.
    std::vector<FileModel> models;
    for (const SourceFile& f : files) {
      if (f.cls.rel.rfind("src/", 0) != 0) continue;
      models.push_back(ExtractModel(f));
    }
    ProgramModel pm(std::move(models));
    for (Finding& f : RunProgramPasses(pm)) findings.push_back(std::move(f));
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  PrintText(findings, std::cout);

  if (!sarif_path.empty() && !WriteFileOrDie(sarif_path, ToSarif(findings)))
    return 2;
  if (!waiver_report_path.empty()) {
    std::sort(waiver_sites.begin(), waiver_sites.end(),
              [](const WaiverSite& a, const WaiverSite& b) {
                return std::tie(a.file, a.line) < std::tie(b.file, b.line);
              });
    if (!WriteFileOrDie(waiver_report_path, WaiverReportJson(waiver_sites)))
      return 2;
  }

  if (!findings.empty()) {
    std::cout << "aosi_lint: " << findings.size() << " finding(s) in "
              << files.size() << " file(s)\n";
    return 1;
  }
  std::cout << "aosi_lint: clean (" << files.size() << " files"
            << (run_program ? ", program passes included" : "") << ")\n";
  return 0;
}

namespace {

// Runs the per-file rules over one fixture file.
std::vector<Finding> LintFixtureFile(const SourceFile& f) {
  std::set<std::string> atomic_names;
  std::set<const Token*> decl_sites;
  CollectAtomicNames(f, &atomic_names, &decl_sites);
  std::vector<Finding> findings;
  LintFile(f, atomic_names, decl_sites, &findings);
  return findings;
}

// Per-file fixture: bad_* files must trigger >=1 finding of their declared
// rule (`aosi-lint-fixture: <rule>`); good_* files must be fully clean.
int CheckFlatFixture(const fs::path& p) {
  SourceFile f;
  std::string raw;
  if (!LoadFile(p.generic_string(), p.filename().generic_string(), &f, &raw)) {
    std::cerr << "FAIL " << p << ": unreadable\n";
    return 1;
  }
  const std::string rule = FindDirective(raw, "aosi-lint-fixture:");
  if (rule.empty()) {
    std::cerr << "FAIL " << p << ": missing 'aosi-lint-fixture:' directive\n";
    return 1;
  }
  const bool expect_bad = p.filename().generic_string().rfind("bad_", 0) == 0;
  const std::vector<Finding> findings = LintFixtureFile(f);
  size_t rule_hits = 0;
  for (const Finding& fi : findings)
    if (fi.rule == rule) ++rule_hits;
  bool ok;
  std::string why;
  if (expect_bad) {
    ok = rule_hits >= 1;
    why = ok ? "" : "expected >=1 '" + rule + "' finding, got none";
  } else {
    ok = findings.empty();
    if (!ok) {
      why = "expected clean, got: " + findings[0].rule + " at line " +
            std::to_string(findings[0].line);
    }
  }
  if (ok) {
    std::cout << "PASS " << p.filename().generic_string() << " ("
              << findings.size() << " finding(s))\n";
    return 0;
  }
  std::cerr << "FAIL " << p.filename().generic_string() << ": " << why << "\n";
  return 1;
}

// Program fixture: a directory of source files forming one mini-program.
// Every file may carry an `aosi-lint-as` path directive to emulate a tree
// location; at least one carries `aosi-lint-fixture: <rule>` naming the
// program rule under test. bad_* directories must produce >=1 finding of that rule from
// the program passes; good_* directories must produce zero.
int CheckProgramFixture(const fs::path& dir) {
  std::vector<fs::path> paths;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && IsSourceExt(entry.path()))
      paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());
  const std::string name = dir.filename().generic_string();
  std::string rule;
  std::vector<FileModel> models;
  for (const fs::path& p : paths) {
    SourceFile f;
    std::string raw;
    if (!LoadFile(p.generic_string(), p.filename().generic_string(), &f,
                  &raw)) {
      std::cerr << "FAIL " << name << ": unreadable " << p << "\n";
      return 1;
    }
    const std::string r = FindDirective(raw, "aosi-lint-fixture:");
    if (!r.empty()) rule = r;
    models.push_back(ExtractModel(f));
  }
  if (rule.empty() || models.empty()) {
    std::cerr << "FAIL " << name
              << ": program fixture needs source files and an "
                 "'aosi-lint-fixture:' directive\n";
    return 1;
  }
  ProgramModel pm(std::move(models));
  const std::vector<Finding> findings = RunProgramPasses(pm);
  size_t rule_hits = 0;
  for (const Finding& fi : findings)
    if (fi.rule == rule) ++rule_hits;
  const bool expect_bad = name.rfind("bad_", 0) == 0;
  const bool ok = expect_bad ? rule_hits >= 1 : rule_hits == 0;
  if (ok) {
    std::cout << "PASS " << name << "/ (" << rule_hits << " '" << rule
              << "' finding(s))\n";
    return 0;
  }
  if (expect_bad) {
    std::cerr << "FAIL " << name << ": expected >=1 '" << rule
              << "' finding from the program passes, got none\n";
  } else {
    std::cerr << "FAIL " << name << ": expected zero '" << rule
              << "' findings, got " << rule_hits << "\n";
  }
  return 1;
}

// Fixture mode: flat files in `dir` are per-file fixtures; directories
// under `dir`/program/ are whole-program fixtures.
int RunSelftest(const std::string& dir) {
  int failures = 0;
  int cases = 0;
  std::vector<fs::path> flat;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && IsSourceExt(entry.path()))
      flat.push_back(entry.path());
  }
  std::sort(flat.begin(), flat.end());
  for (const fs::path& p : flat) {
    ++cases;
    failures += CheckFlatFixture(p);
  }
  const fs::path program_dir = fs::path(dir) / "program";
  if (fs::exists(program_dir)) {
    std::vector<fs::path> dirs;
    for (const auto& entry : fs::directory_iterator(program_dir)) {
      if (entry.is_directory()) dirs.push_back(entry.path());
    }
    std::sort(dirs.begin(), dirs.end());
    for (const fs::path& d : dirs) {
      ++cases;
      failures += CheckProgramFixture(d);
    }
  }
  if (cases == 0) {
    std::cerr << "aosi_lint --selftest: no fixtures in " << dir << "\n";
    return 2;
  }
  std::cout << "aosi_lint --selftest: " << (cases - failures) << "/" << cases
            << " fixtures behaved as expected\n";
  return failures == 0 ? 0 : 1;
}

}  // namespace
