// aosi_lint lexer: comment/string stripping and tokenization shared by the
// per-file rules (rules.h) and the whole-program model extraction (model.h).
//
// The lexer is deliberately dumb — no preprocessor, no type system — but it
// preserves line numbers exactly, which is all the downstream analyses need
// to anchor findings and waivers.

#pragma once

#include <string>
#include <vector>

namespace aosilint {

// Replaces comments and string/character literals (including raw strings)
// with spaces so the lexer never sees their contents; newlines are kept so
// token line numbers match the original file.
std::string StripCommentsAndStrings(const std::string& in);

enum class TokKind { kIdent, kNumber, kPunct };

struct Token {
  TokKind kind;
  std::string text;
  int line;
};

// Tokenizes stripped source. Identifiers, numbers (incl. digit separators
// and exponent signs) and maximal-munch punctuators up to 3 chars.
std::vector<Token> Lex(const std::string& code);

// Marks '<' / '>' tokens that open/close a template argument list so the
// epoch-compare rule does not mistake `std::map<Epoch, X>` for comparisons.
// Heuristic: a '<' directly after an identifier opens a template list if a
// matching close is reachable through tokens that can only appear in a type
// list (identifiers, ::, commas, *, &, nested angles, balanced parens for
// function types, numbers for non-type args).
std::vector<bool> MarkTemplateAngles(const std::vector<Token>& toks);

}  // namespace aosilint
