// aosi_lint per-file rules: the original single-TU checks (atomic memory
// orders, epoch comparisons, naked std:: primitives, locks across RPC in one
// body, checker-hook slot access). Whole-program rules live in program.h.

#pragma once

#include <set>
#include <string>
#include <vector>

#include "aosi_lint/model.h"

namespace aosilint {

struct RuleInfo {
  const char* name;
  const char* description;
  bool program = false;  // true for whole-program passes (need --program)
};

// All rules, per-file first, then program-level.
const std::vector<RuleInfo>& Rules();

// First pass for the atomic operator-form check: record names declared as
// std::atomic<...>. Names are scoped by the caller (usually per path stem so
// x.h and x.cc share a bucket); decl_sites lets the checker skip the
// declaration token itself.
void CollectAtomicNames(const SourceFile& f, std::set<std::string>* names,
                        std::set<const Token*>* decl_sites);

// Runs every per-file rule applicable to f's FileClass; waived findings are
// filtered out before being appended to *findings.
void LintFile(const SourceFile& f, const std::set<std::string>& atomic_names,
              const std::set<const Token*>& decl_sites,
              std::vector<Finding>* findings);

}  // namespace aosilint
