// aosi_lint — AOSI-specific concurrency lint for the cubrick tree.
//
// A standalone token-based checker (no libclang) that enforces the rules
// Clang's -Wthread-safety cannot express:
//
//   atomic-memory-order  every std::atomic load/store/RMW names an explicit
//                        std::memory_order argument; relaxed RMWs in src/
//                        additionally need a '// relaxed: <why>' comment,
//                        except in src/obs/ (relaxed instrument writes are
//                        that subsystem's documented policy)
//   epoch-compare        raw integer comparisons of epochs (identifiers
//                        mentioning epoch/lce/lse/horizon) are only allowed
//                        inside src/aosi/epoch*.{h,cc}; everything else uses
//                        the named helpers in src/aosi/epoch.h
//   naked-mutex          std:: synchronization primitives are only allowed
//                        inside src/common/mutex.h (everyone else uses the
//                        annotated wrappers)
//   mutex-across-rpc     src/cluster code must not hold a lock across a
//                        Node RPC/broadcast call (Handle*, DeliverOrQueue)
//
// Input is the set of sources named by a compile_commands.json plus a
// recursive scan of the conventional directories, so headers (which carry
// most epoch comparisons) are covered too. A finding can be waived with
//   // aosi-lint: allow(<rule>)
// on the offending line, or alone on the line above it.
//
// See docs/STATIC_ANALYSIS.md for how to add a rule.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

struct RuleInfo {
  const char* name;
  const char* description;
};

const RuleInfo kRules[] = {
    {"atomic-memory-order",
     "std::atomic loads/stores/RMWs must pass an explicit std::memory_order; "
     "operator forms (++, +=, =) on atomics are forbidden; relaxed RMWs in "
     "src/ need a '// relaxed: <why>' justification comment, except in "
     "src/obs/ where relaxed instrument writes are the documented policy "
     "(docs/OBSERVABILITY.md)"},
    {"epoch-compare",
     "raw comparisons of epoch-like values (identifiers containing epoch/lce/"
     "lse/horizon) are only allowed in src/aosi/epoch*; use the named helpers "
     "(IsVisibleAt, HappensBefore, ...) from src/aosi/epoch.h. Also covers "
     "std::min/std::max applied to epoch operands: use MinEpoch/MaxEpoch, "
     "which state the epoch-order intent"},
    {"naked-mutex",
     "std::mutex/std::shared_mutex/std::condition_variable/std::*_lock are "
     "forbidden outside src/common/mutex.h; use the annotated wrappers"},
    {"mutex-across-rpc",
     "cluster code must not hold a MutexLock across a Node RPC/broadcast "
     "call (Handle*, DeliverOrQueue)"},
    {"checker-hook",
     "the process-global checker-hook slot (internal::CheckerHookSlot) may "
     "only be touched inside src/aosi/checker_hook.h; install/read hooks via "
     "SetCheckerHook()/GetCheckerHook(), which carry the release/acquire "
     "orders the hook protocol requires (raw slot access would let an "
     "unordered read observe a half-constructed checker)"},
};

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

// ---------------------------------------------------------------------------
// Source preprocessing: comment/string stripping that preserves line numbers
// ---------------------------------------------------------------------------

// Replaces comments and string/character literals with spaces so the lexer
// never sees their contents; newlines are kept so token line numbers match
// the original file.
std::string StripCommentsAndStrings(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    const char next = i + 1 < in.size() ? in[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out += "  ";
          ++i;
        } else if (c == '"') {
          // Raw string literal? The '"' follows an R (possibly with an
          // encoding prefix, e.g. u8R"(...)").
          bool raw = false;
          if (i > 0 && in[i - 1] == 'R') {
            size_t b = i - 1;
            while (b > 0 && std::isalnum(static_cast<unsigned char>(in[b - 1])))
              --b;
            // Reject identifiers that merely end in R (e.g. `fooR"x"` cannot
            // appear in valid code anyway).
            raw = (i - b) <= 3;
          }
          if (raw) {
            // R"delim( ... )delim"
            size_t p = i + 1;
            std::string delim;
            while (p < in.size() && in[p] != '(') delim += in[p++];
            const std::string close = ")" + delim + "\"";
            size_t end = in.find(close, p);
            if (end == std::string::npos) end = in.size();
            else end += close.size();
            for (size_t k = i; k < end; ++k)
              out += (in[k] == '\n') ? '\n' : ' ';
            i = end - 1;
          } else {
            state = State::kString;
            out += ' ';
          }
        } else if (c == '\'') {
          state = State::kChar;
          out += ' ';
        } else {
          out += c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
          out += '\n';
        } else {
          out += ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out += "  ";
          ++i;
        } else {
          out += (c == '\n') ? '\n' : ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out += "  ";
          ++i;
          if (next == '\n') out.back() = '\n';
        } else if (c == '"') {
          state = State::kCode;
          out += ' ';
        } else {
          out += (c == '\n') ? '\n' : ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out += "  ";
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          out += ' ';
        } else {
          out += ' ';
        }
        break;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

enum class TokKind { kIdent, kNumber, kPunct };

struct Token {
  TokKind kind;
  std::string text;
  int line;
};

std::vector<Token> Lex(const std::string& code) {
  static const char* kPuncts3[] = {"<<=", ">>=", "->*", "...", "<=>"};
  static const char* kPuncts2[] = {"::", "->", "++", "--", "<<", ">>", "<=",
                                   ">=", "==", "!=", "&&", "||", "+=", "-=",
                                   "*=", "/=", "%=", "&=", "|=", "^=", "##"};
  std::vector<Token> toks;
  int line = 1;
  size_t i = 0;
  const size_t n = code.size();
  while (i < n) {
    const char c = code[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i + 1;
      while (j < n && (std::isalnum(static_cast<unsigned char>(code[j])) ||
                       code[j] == '_'))
        ++j;
      toks.push_back({TokKind::kIdent, code.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i + 1;
      while (j < n && (std::isalnum(static_cast<unsigned char>(code[j])) ||
                       code[j] == '_' || code[j] == '\'' ||
                       (code[j] == '.' ) ||
                       ((code[j] == '+' || code[j] == '-') &&
                        (code[j - 1] == 'e' || code[j - 1] == 'E' ||
                         code[j - 1] == 'p' || code[j - 1] == 'P'))))
        ++j;
      toks.push_back({TokKind::kNumber, code.substr(i, j - i), line});
      i = j;
      continue;
    }
    bool matched = false;
    if (i + 3 <= n) {
      const std::string three = code.substr(i, 3);
      for (const char* p : kPuncts3) {
        if (three == p) {
          toks.push_back({TokKind::kPunct, three, line});
          i += 3;
          matched = true;
          break;
        }
      }
    }
    if (matched) continue;
    if (i + 2 <= n) {
      const std::string two = code.substr(i, 2);
      for (const char* p : kPuncts2) {
        if (two == p) {
          toks.push_back({TokKind::kPunct, two, line});
          i += 2;
          matched = true;
          break;
        }
      }
    }
    if (matched) continue;
    toks.push_back({TokKind::kPunct, std::string(1, c), line});
    ++i;
  }
  return toks;
}

// ---------------------------------------------------------------------------
// Template angle-bracket detection
// ---------------------------------------------------------------------------

// Marks '<' / '>' tokens that open/close a template argument list so the
// epoch-compare rule does not mistake `std::map<Epoch, X>` for comparisons.
// Heuristic: a '<' directly after an identifier opens a template list if a
// matching close is reachable through tokens that can only appear in a type
// list (identifiers, ::, commas, *, &, nested angles, balanced parens for
// function types, numbers for non-type args).
std::vector<bool> MarkTemplateAngles(const std::vector<Token>& toks) {
  std::vector<bool> is_template(toks.size(), false);
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].text != "<" || i == 0) continue;
    if (toks[i - 1].kind != TokKind::kIdent) continue;
    int depth = 1;
    int paren = 0;
    bool ok = false;
    size_t j = i + 1;
    std::vector<size_t> opens = {i};
    std::vector<size_t> closes;
    for (int steps = 0; j < toks.size() && steps < 64; ++j, ++steps) {
      const Token& t = toks[j];
      if (paren > 0) {
        if (t.text == "(") ++paren;
        else if (t.text == ")") --paren;
        else if (t.text == ";" || t.text == "{" || t.text == "}") break;
        continue;
      }
      if (t.kind == TokKind::kIdent || t.kind == TokKind::kNumber ||
          t.text == "::" || t.text == "," || t.text == "*" || t.text == "&" ||
          t.text == "...") {
        continue;
      }
      if (t.text == "(") {
        ++paren;
        continue;
      }
      if (t.text == "<") {
        ++depth;
        opens.push_back(j);
        continue;
      }
      if (t.text == ">") {
        --depth;
        closes.push_back(j);
        if (depth == 0) {
          ok = true;
          break;
        }
        continue;
      }
      if (t.text == ">>") {
        depth -= 2;
        closes.push_back(j);
        if (depth <= 0) {
          ok = true;
          break;
        }
        continue;
      }
      break;  // anything else (operators, ;, braces) => not a template list
    }
    if (ok) {
      for (size_t k : opens) is_template[k] = true;
      for (size_t k : closes) is_template[k] = true;
    }
  }
  return is_template;
}

// ---------------------------------------------------------------------------
// Per-file lint context
// ---------------------------------------------------------------------------

struct FileClass {
  std::string rel;       // path used for rule scoping and display
  bool in_src = false;
  bool epoch_zone = false;    // src/aosi/epoch*
  bool mutex_header = false;  // src/common/mutex.h / thread_annotations.h
  bool in_cluster = false;    // src/cluster/
  bool in_obs = false;        // src/obs/ (relaxed instrument writes allowed)
  bool checker_hook_header = false;  // src/aosi/checker_hook.h
};

FileClass Classify(std::string rel) {
  std::replace(rel.begin(), rel.end(), '\\', '/');
  FileClass fc;
  fc.rel = rel;
  fc.in_src = rel.rfind("src/", 0) == 0;
  fc.epoch_zone = rel.rfind("src/aosi/epoch", 0) == 0;
  fc.mutex_header = rel == "src/common/mutex.h" ||
                    rel == "src/common/thread_annotations.h";
  fc.in_cluster = rel.rfind("src/cluster/", 0) == 0;
  fc.in_obs = rel.rfind("src/obs/", 0) == 0;
  fc.checker_hook_header = rel == "src/aosi/checker_hook.h";
  return fc;
}

struct SourceFile {
  std::string display_path;  // path printed in findings
  FileClass cls;
  std::vector<Token> toks;
  // line -> waived rule names ("*" = all)
  std::map<int, std::set<std::string>> waivers;
  // Lines carrying (or covered by) a '// relaxed: <why>' justification.
  std::set<int> relaxed_lines;
};

// Scans raw (pre-strip) content for waiver comments.
std::map<int, std::set<std::string>> CollectWaivers(const std::string& raw) {
  std::map<int, std::set<std::string>> waivers;
  std::istringstream in(raw);
  std::string line_text;
  int line = 0;
  while (std::getline(in, line_text)) {
    ++line;
    const size_t pos = line_text.find("aosi-lint: allow(");
    if (pos == std::string::npos) continue;
    const size_t open = line_text.find('(', pos);
    const size_t close = line_text.find(')', open);
    if (open == std::string::npos || close == std::string::npos) continue;
    std::string rules = line_text.substr(open + 1, close - open - 1);
    std::set<std::string> names;
    std::string cur;
    for (char c : rules + ",") {
      if (c == ',') {
        if (!cur.empty()) names.insert(cur);
        cur.clear();
      } else if (!std::isspace(static_cast<unsigned char>(c))) {
        cur += c;
      }
    }
    waivers[line].insert(names.begin(), names.end());
    // A waiver alone on its line also covers the next line.
    const size_t comment = line_text.find("//");
    if (comment != std::string::npos &&
        line_text.find_first_not_of(" \t") == comment) {
      waivers[line + 1].insert(names.begin(), names.end());
    }
  }
  return waivers;
}

// Scans raw (pre-strip) content for '// relaxed: <why>' justification
// comments. Like waivers, a comment-only line also covers the next line.
std::set<int> CollectRelaxedComments(const std::string& raw) {
  std::set<int> lines;
  std::istringstream in(raw);
  std::string line_text;
  int line = 0;
  while (std::getline(in, line_text)) {
    ++line;
    const size_t comment = line_text.find("//");
    if (comment == std::string::npos) continue;
    if (line_text.find("relaxed:", comment) == std::string::npos) continue;
    lines.insert(line);
    if (line_text.find_first_not_of(" \t") == comment) lines.insert(line + 1);
  }
  return lines;
}

std::string FindDirective(const std::string& raw, const std::string& key) {
  const size_t pos = raw.find(key);
  if (pos == std::string::npos) return "";
  size_t start = pos + key.size();
  while (start < raw.size() && (raw[start] == ' ' || raw[start] == '\t'))
    ++start;
  size_t end = start;
  while (end < raw.size() && !std::isspace(static_cast<unsigned char>(raw[end])))
    ++end;
  return raw.substr(start, end - start);
}

// ---------------------------------------------------------------------------
// Rule: atomic-memory-order
// ---------------------------------------------------------------------------

const std::set<std::string> kAtomicMemberOps = {
    "load",          "store",          "exchange",
    "fetch_add",     "fetch_sub",      "fetch_and",
    "fetch_or",      "fetch_xor",      "compare_exchange_weak",
    "compare_exchange_strong"};

// Read-modify-write subset: relaxed ordering on these loses the usual
// synchronizes-with edge, so src/ callers must justify it in a comment.
const std::set<std::string> kAtomicRmwOps = {
    "exchange",  "fetch_add", "fetch_sub",
    "fetch_and", "fetch_or",  "fetch_xor"};

// First pass: record names declared as std::atomic<...> so the operator-form
// check (`flag++`, `flag = x`) can recognize them. Names are scoped to the
// declaring file and its paired source/header (same path stem), which covers
// the member-declared-in-.h-used-in-.cc case without letting a local named
// like an unrelated file's atomic trip the rule.
void CollectAtomicNames(const SourceFile& f, std::set<std::string>* names,
                        std::set<const Token*>* decl_sites) {
  const auto& toks = f.toks;
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].text != "atomic" || toks[i + 1].text != "<") continue;
    int depth = 0;
    size_t j = i + 1;
    for (; j < toks.size(); ++j) {
      if (toks[j].text == "<") ++depth;
      else if (toks[j].text == ">") { if (--depth == 0) break; }
      else if (toks[j].text == ">>") { depth -= 2; if (depth <= 0) break; }
      else if (toks[j].text == ";") break;
    }
    if (j + 1 >= toks.size() || depth > 0) continue;
    const Token& name = toks[j + 1];
    if (name.kind != TokKind::kIdent) continue;
    if (j + 2 < toks.size()) {
      const std::string& after = toks[j + 2].text;
      if (after == ";" || after == "{" || after == "=" || after == "," ||
          after == ")" || after == "(") {
        names->insert(name.text);
        decl_sites->insert(&name);
      }
    }
  }
}

void CheckAtomicMemoryOrder(const SourceFile& f,
                            const std::set<std::string>& atomic_names,
                            const std::set<const Token*>& decl_sites,
                            std::vector<Finding>* out) {
  const auto& toks = f.toks;
  for (size_t i = 1; i + 1 < toks.size(); ++i) {
    const Token& t = toks[i];
    // Member-call form: x.load(...), p->fetch_add(...)
    if (t.kind == TokKind::kIdent && kAtomicMemberOps.count(t.text) &&
        (toks[i - 1].text == "." || toks[i - 1].text == "->") &&
        toks[i + 1].text == "(") {
      int depth = 0;
      bool has_order = false;
      bool is_relaxed = false;
      for (size_t j = i + 1; j < toks.size(); ++j) {
        if (toks[j].text == "(") ++depth;
        else if (toks[j].text == ")") { if (--depth == 0) break; }
        else if (toks[j].kind == TokKind::kIdent &&
                 toks[j].text.rfind("memory_order", 0) == 0) {
          has_order = true;
          if (toks[j].text == "memory_order_relaxed") is_relaxed = true;
        }
      }
      if (!has_order) {
        out->push_back({f.display_path, t.line, "atomic-memory-order",
                        "atomic ." + t.text +
                            "() without an explicit std::memory_order"});
      } else if (is_relaxed && kAtomicRmwOps.count(t.text) && f.cls.in_src &&
                 !f.cls.in_obs && !f.relaxed_lines.count(t.line)) {
        // Carve-out: src/obs instruments are relaxed by documented policy
        // (monotonic tallies read via acquire snapshots); everyone else
        // explains why the missing synchronizes-with edge is safe.
        out->push_back(
            {f.display_path, t.line, "atomic-memory-order",
             "relaxed ." + t.text +
                 "() needs a '// relaxed: <why>' justification comment "
                 "(src/obs instruments are exempt; docs/OBSERVABILITY.md)"});
      }
      continue;
    }
    // Operator form on a known atomic variable: ++x, x++, x += 1, x = v.
    if (t.kind == TokKind::kIdent && atomic_names.count(t.text) &&
        !decl_sites.count(&t)) {
      const std::string& next = toks[i + 1].text;
      const std::string& prev = toks[i - 1].text;
      static const std::set<std::string> kCompound = {"++", "--", "+=", "-=",
                                                      "&=", "|=", "^="};
      const bool op_after = kCompound.count(next) || next == "=";
      const bool op_before = prev == "++" || prev == "--";
      // `name =` only counts when it is an assignment, not `==`/`<=` (those
      // are separate tokens) and not a named-argument-like context.
      if (op_after || op_before) {
        out->push_back(
            {f.display_path, t.line, "atomic-memory-order",
             "operator form on std::atomic '" + t.text +
                 "' is an implicit seq_cst access; use .load/.store/.fetch_* "
                 "with an explicit std::memory_order"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: epoch-compare
// ---------------------------------------------------------------------------

bool NameTouchesEpoch(const std::string& name) {
  static const std::set<std::string> kExcluded = {
      // Type names (template args, declarations) and lexical near-misses.
      "Epoch",      "EpochSet",   "EpochVector", "EpochClock",
      "EpochEntry", "EpochRun",   "EpochVectorStats",
      "false",      "else",
  };
  if (kExcluded.count(name)) return false;
  std::string lower;
  lower.reserve(name.size());
  for (char c : name)
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return lower.find("epoch") != std::string::npos ||
         lower.find("lce") != std::string::npos ||
         lower.find("lse") != std::string::npos ||
         lower.find("horizon") != std::string::npos;
}

// Walks back from toks[i] (exclusive) to the identifier naming the left
// operand: the member/function name directly before the operator, skipping
// one balanced ()/[] group.
const Token* LeftOperand(const std::vector<Token>& toks, size_t i) {
  if (i == 0) return nullptr;
  size_t k = i - 1;
  if (toks[k].text == ")" || toks[k].text == "]") {
    const std::string open = toks[k].text == ")" ? "(" : "[";
    const std::string close = toks[k].text;
    int depth = 0;
    while (k > 0) {
      if (toks[k].text == close) ++depth;
      else if (toks[k].text == open && --depth == 0) break;
      --k;
    }
    if (k == 0) return nullptr;
    --k;
  }
  return toks[k].kind == TokKind::kIdent ? &toks[k] : nullptr;
}

// Walks forward from toks[i] (exclusive), skipping unary operators, to the
// last identifier of the right operand's member chain
// (`a < txn->epoch` -> epoch).
const Token* RightOperand(const std::vector<Token>& toks, size_t i) {
  size_t j = i + 1;
  int skipped = 0;
  while (j < toks.size() && skipped < 4 &&
         (toks[j].text == "*" || toks[j].text == "&" || toks[j].text == "-" ||
          toks[j].text == "+" || toks[j].text == "!" || toks[j].text == "~" ||
          toks[j].text == "(")) {
    ++j;
    ++skipped;
  }
  if (j >= toks.size() || toks[j].kind != TokKind::kIdent) return nullptr;
  // Follow the member chain: std::foo, a.b->c
  const Token* last = &toks[j];
  while (j + 2 < toks.size() &&
         (toks[j + 1].text == "." || toks[j + 1].text == "->" ||
          toks[j + 1].text == "::") &&
         toks[j + 2].kind == TokKind::kIdent) {
    j += 2;
    last = &toks[j];
  }
  return last;
}

void CheckEpochCompare(const SourceFile& f, std::vector<Finding>* out) {
  static const std::set<std::string> kCompareOps = {"<",  ">",  "<=",
                                                    ">=", "==", "!="};
  const auto& toks = f.toks;
  const std::vector<bool> is_template = MarkTemplateAngles(toks);
  for (size_t i = 1; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kPunct || !kCompareOps.count(toks[i].text))
      continue;
    if (is_template[i]) continue;
    const Token* lhs = LeftOperand(toks, i);
    const Token* rhs = RightOperand(toks, i);
    const Token* hit = nullptr;
    if (lhs && NameTouchesEpoch(lhs->text)) hit = lhs;
    else if (rhs && NameTouchesEpoch(rhs->text)) hit = rhs;
    if (hit == nullptr) continue;
    out->push_back(
        {f.display_path, toks[i].line, "epoch-compare",
         "raw epoch comparison '" + hit->text + " " + toks[i].text +
             " ...' outside src/aosi/epoch*; use the named helpers from "
             "src/aosi/epoch.h (IsVisibleAt, HappensBefore, AtOrBefore, ...)"});
  }

  // std::min / std::max over epoch operands order epochs with raw integer
  // comparison just as the operators above do (this is exactly the purge
  // run-merge bug): flag them and point at MinEpoch/MaxEpoch.
  for (size_t i = 2; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent ||
        (toks[i].text != "min" && toks[i].text != "max")) {
      continue;
    }
    if (toks[i - 1].text != "::" || toks[i - 2].text != "std") continue;
    // Skip an explicit template argument list (std::max<Epoch>(...)).
    size_t j = i + 1;
    if (j < toks.size() && toks[j].text == "<") {
      int angle = 0;
      for (; j < toks.size(); ++j) {
        if (toks[j].text == "<") ++angle;
        else if (toks[j].text == ">") { if (--angle == 0) { ++j; break; } }
        else if (toks[j].text == ">>") { angle -= 2; if (angle <= 0) { ++j; break; } }
        else if (toks[j].text == ";" || toks[j].text == "{") break;
      }
    }
    if (j >= toks.size() || toks[j].text != "(") continue;
    const Token* hit = nullptr;
    int depth = 0;
    for (size_t k = j; k < toks.size(); ++k) {
      if (toks[k].text == "(") ++depth;
      else if (toks[k].text == ")") { if (--depth == 0) break; }
      else if (toks[k].kind == TokKind::kIdent &&
               NameTouchesEpoch(toks[k].text)) {
        hit = &toks[k];
        break;
      }
    }
    if (hit == nullptr) continue;
    out->push_back(
        {f.display_path, toks[i].line, "epoch-compare",
         "std::" + toks[i].text + " over epoch operand '" + hit->text +
             "' outside src/aosi/epoch*; ordering epochs needs "
             "MinEpoch/MaxEpoch from src/aosi/epoch.h"});
  }
}

// ---------------------------------------------------------------------------
// Rule: naked-mutex
// ---------------------------------------------------------------------------

void CheckNakedMutex(const SourceFile& f, std::vector<Finding>* out) {
  static const std::set<std::string> kForbidden = {
      "mutex",         "shared_mutex",       "recursive_mutex",
      "timed_mutex",   "recursive_timed_mutex",
      "condition_variable", "condition_variable_any",
      "lock_guard",    "unique_lock",        "shared_lock",
      "scoped_lock"};
  const auto& toks = f.toks;
  for (size_t i = 2; i < toks.size(); ++i) {
    if (toks[i].kind == TokKind::kIdent && kForbidden.count(toks[i].text) &&
        toks[i - 1].text == "::" && toks[i - 2].text == "std") {
      out->push_back({f.display_path, toks[i].line, "naked-mutex",
                      "std::" + toks[i].text +
                          " outside src/common/mutex.h; use the annotated "
                          "wrappers (Mutex, MutexLock, CondVar, ...)"});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: mutex-across-rpc
// ---------------------------------------------------------------------------

void CheckMutexAcrossRpc(const SourceFile& f, std::vector<Finding>* out) {
  static const std::set<std::string> kLockTypes = {
      "MutexLock", "WriterMutexLock", "ReaderMutexLock", "lock_guard",
      "unique_lock", "scoped_lock"};
  const auto& toks = f.toks;
  int depth = 0;
  std::vector<int> lock_depths;  // brace depth at which each live lock lives
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.text == "{") {
      ++depth;
      continue;
    }
    if (t.text == "}") {
      --depth;
      while (!lock_depths.empty() && lock_depths.back() > depth)
        lock_depths.pop_back();
      continue;
    }
    if (t.kind != TokKind::kIdent) continue;
    // RAII lock declaration: `MutexLock lock(mu);` / `MutexLock lock{mu};`
    if (kLockTypes.count(t.text) && i + 2 < toks.size() &&
        toks[i + 1].kind == TokKind::kIdent &&
        (toks[i + 2].text == "(" || toks[i + 2].text == "{")) {
      lock_depths.push_back(depth);
      continue;
    }
    if (lock_depths.empty()) continue;
    // RPC/broadcast call while a lock is live in an enclosing scope.
    const bool is_handle = t.text.size() > 6 && t.text.rfind("Handle", 0) == 0 &&
                           std::isupper(static_cast<unsigned char>(t.text[6]));
    const bool is_rpc = is_handle || t.text == "DeliverOrQueue";
    if (is_rpc && i + 1 < toks.size() && toks[i + 1].text == "(") {
      out->push_back({f.display_path, t.line, "mutex-across-rpc",
                      "RPC/broadcast call '" + t.text +
                          "' while holding a lock; release the lock before "
                          "calling into cluster::Node"});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: checker-hook
// ---------------------------------------------------------------------------

void CheckCheckerHookSlot(const SourceFile& f, std::vector<Finding>* out) {
  const auto& toks = f.toks;
  for (const Token& t : toks) {
    if (t.kind == TokKind::kIdent && t.text == "CheckerHookSlot") {
      out->push_back(
          {f.display_path, t.line, "checker-hook",
           "direct access to the checker-hook slot outside "
           "src/aosi/checker_hook.h; use GetCheckerHook()/SetCheckerHook(), "
           "which carry the acquire/release memory orders"});
    }
  }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

bool LoadFile(const std::string& path, const std::string& rel_for_rules,
              SourceFile* out, std::string* raw_out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::stringstream ss;
  ss << in.rdbuf();
  std::string raw = ss.str();
  // A fixture can emulate a tree location with `aosi-lint-as: <path>`.
  std::string as = FindDirective(raw, "aosi-lint-as:");
  out->display_path = path;
  out->cls = Classify(as.empty() ? rel_for_rules : as);
  out->waivers = CollectWaivers(raw);
  out->relaxed_lines = CollectRelaxedComments(raw);
  out->toks = Lex(StripCommentsAndStrings(raw));
  if (raw_out) *raw_out = std::move(raw);
  return true;
}

void LintFile(const SourceFile& f, const std::set<std::string>& atomic_names,
              const std::set<const Token*>& decl_sites,
              std::vector<Finding>* findings) {
  std::vector<Finding> raw;
  CheckAtomicMemoryOrder(f, atomic_names, decl_sites, &raw);
  if (f.cls.in_src && !f.cls.epoch_zone) CheckEpochCompare(f, &raw);
  if (f.cls.in_src && !f.cls.mutex_header) CheckNakedMutex(f, &raw);
  if (f.cls.in_cluster) CheckMutexAcrossRpc(f, &raw);
  if (!f.cls.checker_hook_header) CheckCheckerHookSlot(f, &raw);
  for (auto& finding : raw) {
    auto it = f.waivers.find(finding.line);
    if (it != f.waivers.end() &&
        (it->second.count(finding.rule) || it->second.count("*"))) {
      continue;
    }
    findings->push_back(std::move(finding));
  }
}

bool IsSourceExt(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".h" || ext == ".hpp" || ext == ".cpp";
}

// Minimal extraction of "file" entries from a compile_commands.json.
std::vector<std::string> FilesFromCompileCommands(const std::string& path) {
  std::vector<std::string> files;
  std::ifstream in(path, std::ios::binary);
  if (!in) return files;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();
  const std::string key = "\"file\"";
  size_t pos = 0;
  while ((pos = json.find(key, pos)) != std::string::npos) {
    size_t colon = json.find(':', pos + key.size());
    if (colon == std::string::npos) break;
    size_t q1 = json.find('"', colon + 1);
    if (q1 == std::string::npos) break;
    size_t q2 = q1 + 1;
    std::string value;
    while (q2 < json.size() && json[q2] != '"') {
      if (json[q2] == '\\' && q2 + 1 < json.size()) ++q2;
      value += json[q2++];
    }
    files.push_back(value);
    pos = q2;
  }
  return files;
}

std::string RelativeTo(const fs::path& root, const fs::path& p) {
  std::error_code ec;
  fs::path rel = fs::relative(p, root, ec);
  if (ec || rel.empty() || rel.native()[0] == '.') return p.generic_string();
  return rel.generic_string();
}

int RunSelftest(const std::string& dir);

int Usage() {
  std::cerr
      << "usage: aosi_lint [--root DIR] [--compile-commands FILE]\n"
      << "                 [--list-rules] [--selftest DIR] [files...]\n\n"
      << "Without file arguments, lints src/, tests/, bench/, tools/ and\n"
      << "examples/ under --root (default: cwd), plus any sources listed in\n"
      << "compile_commands.json (auto-detected at <root>/build/).\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string compile_commands;
  std::string selftest_dir;
  std::vector<std::string> file_args;
  bool list_rules = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) root = argv[++i];
    else if (arg == "--compile-commands" && i + 1 < argc)
      compile_commands = argv[++i];
    else if (arg == "--selftest" && i + 1 < argc) selftest_dir = argv[++i];
    else if (arg == "--list-rules") list_rules = true;
    else if (arg == "--help" || arg == "-h") return Usage();
    else if (!arg.empty() && arg[0] == '-') return Usage();
    else file_args.push_back(arg);
  }

  if (list_rules) {
    for (const RuleInfo& r : kRules)
      std::cout << r.name << "\n    " << r.description << "\n";
    return 0;
  }
  if (!selftest_dir.empty()) return RunSelftest(selftest_dir);

  const fs::path root_path(root);
  std::vector<std::pair<std::string, std::string>> inputs;  // path, rel
  std::set<std::string> seen;
  auto add = [&](const fs::path& p) {
    std::error_code ec;
    const std::string canon = fs::weakly_canonical(p, ec).generic_string();
    const std::string key = ec ? p.generic_string() : canon;
    // Fixtures intentionally violate the rules; they are exercised by
    // --selftest, not the tree scan.
    if (RelativeTo(root_path, p).rfind("tests/lint_fixtures/", 0) == 0)
      return;
    if (seen.insert(key).second)
      inputs.emplace_back(p.generic_string(), RelativeTo(root_path, p));
  };

  if (!file_args.empty()) {
    for (const auto& f : file_args) add(f);
  } else {
    for (const char* dir : {"src", "tests", "bench", "tools", "examples"}) {
      const fs::path d = root_path / dir;
      if (!fs::exists(d)) continue;
      for (const auto& entry : fs::recursive_directory_iterator(d)) {
        if (entry.is_regular_file() && IsSourceExt(entry.path()))
          add(entry.path());
      }
    }
    if (compile_commands.empty()) {
      const fs::path guess = root_path / "build" / "compile_commands.json";
      if (fs::exists(guess)) compile_commands = guess.generic_string();
    }
    if (!compile_commands.empty()) {
      for (const auto& f : FilesFromCompileCommands(compile_commands)) {
        const fs::path p(f);
        if (fs::exists(p) && IsSourceExt(p) &&
            RelativeTo(root_path, p).rfind("src/", 0) != std::string::npos)
          add(p);
      }
    }
  }

  std::vector<SourceFile> files;
  files.reserve(inputs.size());
  for (const auto& [path, rel] : inputs) {
    SourceFile f;
    if (!LoadFile(path, rel, &f, nullptr)) {
      std::cerr << "aosi_lint: cannot read " << path << "\n";
      return 2;
    }
    files.push_back(std::move(f));
  }

  // Atomic variable names are declared in headers but used in the paired
  // source file, so key the collected names by path stem: x.h and x.cc land
  // in the same bucket.
  auto stem_of = [](const std::string& p) {
    const size_t dot = p.find_last_of('.');
    return dot == std::string::npos ? p : p.substr(0, dot);
  };
  std::map<std::string, std::set<std::string>> atomic_names_by_stem;
  std::set<const Token*> decl_sites;
  for (const SourceFile& f : files)
    CollectAtomicNames(f, &atomic_names_by_stem[stem_of(f.cls.rel)],
                       &decl_sites);

  std::vector<Finding> findings;
  for (const SourceFile& f : files)
    LintFile(f, atomic_names_by_stem[stem_of(f.cls.rel)], decl_sites,
             &findings);

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line) < std::tie(b.file, b.line);
            });
  for (const Finding& f : findings) {
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  }
  if (!findings.empty()) {
    std::cout << "aosi_lint: " << findings.size() << " finding(s) in "
              << files.size() << " file(s)\n";
    return 1;
  }
  std::cout << "aosi_lint: clean (" << files.size() << " files)\n";
  return 0;
}

namespace {

// Fixture mode: every tests/lint_fixtures file declares the rule it targets
// (`aosi-lint-fixture: <rule>`) and the tree path it emulates
// (`aosi-lint-as: <path>`). bad_* files must trigger >=1 finding of their
// rule; good_* files must produce zero findings of any rule.
int RunSelftest(const std::string& dir) {
  int failures = 0;
  int cases = 0;
  std::vector<fs::path> paths;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (entry.is_regular_file() && IsSourceExt(entry.path()))
      paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());
  if (paths.empty()) {
    std::cerr << "aosi_lint --selftest: no fixtures in " << dir << "\n";
    return 2;
  }
  for (const fs::path& p : paths) {
    ++cases;
    SourceFile f;
    std::string raw;
    if (!LoadFile(p.generic_string(), p.filename().generic_string(), &f,
                  &raw)) {
      std::cerr << "FAIL " << p << ": unreadable\n";
      ++failures;
      continue;
    }
    const std::string rule = FindDirective(raw, "aosi-lint-fixture:");
    const bool expect_bad =
        p.filename().generic_string().rfind("bad_", 0) == 0;
    if (rule.empty()) {
      std::cerr << "FAIL " << p << ": missing 'aosi-lint-fixture:' directive\n";
      ++failures;
      continue;
    }
    std::set<std::string> atomic_names;
    std::set<const Token*> decl_sites;
    CollectAtomicNames(f, &atomic_names, &decl_sites);
    std::vector<Finding> findings;
    LintFile(f, atomic_names, decl_sites, &findings);
    size_t rule_hits = 0;
    for (const Finding& fi : findings)
      if (fi.rule == rule) ++rule_hits;
    bool ok;
    std::string why;
    if (expect_bad) {
      ok = rule_hits >= 1;
      why = ok ? "" : "expected >=1 '" + rule + "' finding, got none";
    } else {
      ok = findings.empty();
      if (!ok) {
        why = "expected clean, got: " + findings[0].rule + " at line " +
              std::to_string(findings[0].line);
      }
    }
    if (ok) {
      std::cout << "PASS " << p.filename().generic_string() << " ("
                << findings.size() << " finding(s))\n";
    } else {
      std::cerr << "FAIL " << p.filename().generic_string() << ": " << why
                << "\n";
      ++failures;
    }
  }
  std::cout << "aosi_lint --selftest: " << (cases - failures) << "/" << cases
            << " fixtures behaved as expected\n";
  return failures == 0 ? 0 : 1;
}

}  // namespace
