// Distributed cluster — AOSI's §IV flow on a simulated multi-node cluster.
//
// Demonstrates: node-strided epochs and Lamport clock piggybacking,
// the begin broadcast that unions pendingTxs into a transaction's deps,
// single-roundtrip commits, replication, and failover reads when a node
// goes down.
//
//   ./build/examples/example_distributed_cluster

#include <cstdio>

#include "cluster/cluster.h"

using namespace cubrick;
using cubrick::cluster::Cluster;
using cubrick::cluster::ClusterOptions;

namespace {

void PrintClocks(Cluster& cluster, const char* when) {
  std::printf("%-38s ECs:", when);
  for (uint32_t n = 1; n <= cluster.num_nodes(); ++n) {
    std::printf(" n%u=%llu", n,
                static_cast<unsigned long long>(cluster.node(n).txns().EC()));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  ClusterOptions options;
  options.num_nodes = 3;
  options.replication_factor = 2;
  options.shards_per_cube = 1;
  Cluster cluster(options);
  CUBRICK_CHECK(cluster
                    .CreateCube("pageviews",
                                {{"site", 128, 4, false}},
                                {{"views", DataType::kInt64}})
                    .ok());

  PrintClocks(cluster, "initial (EC = node index)");

  // A RW transaction on node 1: the begin broadcast advances every clock
  // past its epoch, so no later transaction anywhere can be older.
  auto t1 = cluster.BeginReadWrite(1);
  CUBRICK_CHECK(t1.ok());
  std::printf("T%llu started on n1, deps=%s\n",
              static_cast<unsigned long long>(t1->txn.epoch),
              t1->txn.deps.ToString().c_str());
  PrintClocks(cluster, "after begin broadcast");

  // Load 32 site partitions; consistent hashing spreads them (x2 replicas).
  std::vector<Record> rows;
  for (int64_t site = 0; site < 128; site += 4) {
    rows.push_back({site, site * 100});
  }
  CUBRICK_CHECK(cluster.Append(&*t1, "pageviews", rows).ok());

  // A concurrent transaction from node 2 sees T1 pending in its deps.
  auto t2 = cluster.BeginReadWrite(2);
  CUBRICK_CHECK(t2.ok());
  std::printf("T%llu started on n2, deps=%s (T1 excluded from snapshot)\n",
              static_cast<unsigned long long>(t2->txn.epoch),
              t2->txn.deps.ToString().c_str());

  CUBRICK_CHECK(cluster.Commit(&*t1).ok());  // single broadcast, no 2PC
  CUBRICK_CHECK(cluster.Commit(&*t2).ok());
  PrintClocks(cluster, "after commits");

  Query q;
  q.aggs = {{AggSpec::Fn::kSum, 0}, {AggSpec::Fn::kCount, 0}};
  auto result = cluster.QueryOnce(3, "pageviews", q);
  CUBRICK_CHECK(result.ok());
  std::printf("\ncluster query: %0.f rows, views sum=%.0f (each brick "
              "answered once despite 2x replication)\n",
              result->Single(1, AggSpec::Fn::kCount),
              result->Single(0, AggSpec::Fn::kSum));

  // Node failure: replicas answer for the dead node's bricks.
  CUBRICK_CHECK(cluster.SetNodeOnline(2, false).ok());
  auto failover = cluster.QueryOnce(1, "pageviews", q);
  CUBRICK_CHECK(failover.ok());
  std::printf("node 2 offline -> failover query still sees %.0f rows\n",
              failover->Single(1, AggSpec::Fn::kCount));

  // LSE refuses to advance while a replica is down (§III-D)...
  const aosi::Epoch stuck = cluster.AdvanceClusterLSE();
  CUBRICK_CHECK(cluster.SetNodeOnline(2, true).ok());
  const aosi::Epoch advanced = cluster.AdvanceClusterLSE();
  std::printf("LSE while n2 down: %llu; after revival + redelivery: %llu\n",
              static_cast<unsigned long long>(stuck),
              static_cast<unsigned long long>(advanced));
  return 0;
}
