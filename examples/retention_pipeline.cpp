// Retention pipeline — the OLAP workflow the paper's §II argues for.
//
// A daily ETL job loads one day-partition of facts at a time (append-only,
// idempotent: a bad day is dropped and re-loaded, never updated in place),
// and a retention policy deletes whole day partitions once they age out —
// the only form of delete AOSI supports, and the only one the workflow
// needs. Purge then physically reclaims the memory.
//
//   ./build/examples/example_retention_pipeline

#include <cstdio>

#include "common/random.h"
#include "cubrick/database.h"

using namespace cubrick;

namespace {

constexpr int kRetentionDays = 7;
constexpr int kSimulatedDays = 12;
constexpr uint64_t kRowsPerDay = 20'000;

std::vector<Record> DayOfFacts(Random* rng, int64_t day) {
  std::vector<Record> facts;
  facts.reserve(kRowsPerDay);
  for (uint64_t i = 0; i < kRowsPerDay; ++i) {
    facts.push_back({day, static_cast<int64_t>(rng->Uniform(500)),
                     static_cast<int64_t>(1 + rng->Uniform(5)),
                     rng->NextDouble() * 40.0});
  }
  return facts;
}

}  // namespace

int main() {
  Database db;
  // `day` has range size 1, so each day is its own set of partitions —
  // exactly the shape retention deletes need.
  CUBRICK_CHECK(db.ExecuteDdl("CREATE CUBE orders ("
                              "day int CARDINALITY 64 RANGE 1, "
                              "product int CARDINALITY 512 RANGE 64, "
                              "units int, revenue double)")
                    .ok());

  Random rng(2024);
  Query daily_revenue;
  daily_revenue.group_by = {0};
  daily_revenue.aggs = {{AggSpec::Fn::kSum, 1}};

  std::printf("%4s %10s %12s %12s %14s\n", "day", "records", "bricks(~)",
              "aosi_bytes", "window_rev");
  for (int64_t day = 0; day < kSimulatedDays; ++day) {
    // Load today's facts (one implicit transaction: atomically visible).
    CUBRICK_CHECK(db.Load("orders", DayOfFacts(&rng, day)).ok());

    // Retention: drop partitions older than the window.
    if (day >= kRetentionDays) {
      auto expired =
          db.RangeFilter("orders", "day", 0,
                         static_cast<uint64_t>(day - kRetentionDays));
      CUBRICK_CHECK(expired.ok());
      CUBRICK_CHECK(db.DeletePartitions("orders", {*expired}).ok());
      // Background maintenance: advance LSE (everything committed) and
      // purge so the deleted days are physically reclaimed.
      db.txns().TryAdvanceLSE(db.txns().LCE());
      db.PurgeAll();
    }

    auto result = db.Query("orders", daily_revenue);
    CUBRICK_CHECK(result.ok());
    double window_revenue = 0;
    for (const auto& [key, states] : result->groups()) {
      window_revenue += states[0].Finalize(AggSpec::Fn::kSum);
    }
    std::printf("%4lld %10llu %12llu %12zu %14.2f\n",
                static_cast<long long>(day),
                static_cast<unsigned long long>(db.TotalRecords()),
                static_cast<unsigned long long>(
                    db.FindTable("orders")->NumBricks()),
                db.HistoryMemoryUsage(), window_revenue);
  }

  std::printf(
      "\nSteady state: the record count plateaus at %d days x %llu rows — "
      "old partitions are deleted wholesale and purged, never updated "
      "in place.\n",
      kRetentionDays, static_cast<unsigned long long>(kRowsPerDay));

  // A data-quality incident: day 9 was wrong. The idempotent fix is to
  // drop the partition and re-run that day's ETL (§II-A2), not to update
  // records.
  auto day9 = db.EqFilter("orders", "day", static_cast<int64_t>(9));
  CUBRICK_CHECK(day9.ok());
  CUBRICK_CHECK(db.DeletePartitions("orders", {*day9}).ok());
  Random fixed_rng(9999);
  CUBRICK_CHECK(db.Load("orders", DayOfFacts(&fixed_rng, 9)).ok());
  // Final maintenance cycle so all pending deletes are physically applied.
  db.txns().TryAdvanceLSE(db.txns().LCE());
  db.PurgeAll();

  Query count;
  count.aggs = {{AggSpec::Fn::kCount, 0}};
  auto visible = db.Query("orders", count);
  CUBRICK_CHECK(visible.ok());
  std::printf("day 9 re-stated via drop + idempotent re-load: %.0f visible "
              "records (%llu physical after purge)\n",
              visible->Single(0, AggSpec::Fn::kCount),
              static_cast<unsigned long long>(db.TotalRecords()));
  return 0;
}
