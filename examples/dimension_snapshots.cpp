// Dimension snapshots — the §II-A2 strategy for slowly changing dimensions.
//
// Instead of comparing and updating dimension records in place (Kimball's
// burdensome SCD workflows), each ETL run loads a *complete snapshot* of the
// dimension table into a new partition keyed by snapshot id. Queries join
// against the snapshot they want; retention drops old snapshots wholesale.
// No record is ever updated: a user's changed marital status simply appears
// in the next snapshot.
//
//   ./build/examples/example_dimension_snapshots

#include <cstdio>
#include <string>

#include "cubrick/database.h"

using namespace cubrick;

namespace {

constexpr int kSnapshotsKept = 3;

/// users dimension: user id + status, snapshotted daily.
std::vector<Record> Snapshot(int64_t snapshot_id, int day) {
  std::vector<Record> rows;
  for (int64_t user = 0; user < 500; ++user) {
    // User 43 gets married on day 2; user 99 goes inactive on day 4.
    std::string status = "single";
    if (user == 43 && day >= 2) status = "married";
    if (user % 7 == 0) status = "married";
    if (user == 99 && day >= 4) status = "inactive";
    rows.push_back({snapshot_id, user, status});
  }
  return rows;
}

}  // namespace

int main() {
  Database db;
  // snapshot_id has range size 1: each snapshot is its own partition set.
  CUBRICK_CHECK(db.ExecuteDdl("CREATE CUBE users ("
                              "snapshot int CARDINALITY 32 RANGE 1, "
                              "user_id int CARDINALITY 512 RANGE 64, "
                              "status string)")
                    .ok());

  Query by_status;
  by_status.aggs = {{AggSpec::Fn::kCount, 0}};

  for (int day = 0; day < 6; ++day) {
    // The whole dimension is re-snapshotted — idempotent, no updates.
    CUBRICK_CHECK(db.Load("users", Snapshot(day, day)).ok());

    // Retention: keep the last kSnapshotsKept snapshots.
    if (day >= kSnapshotsKept) {
      auto old = db.RangeFilter("users", "snapshot", 0,
                                static_cast<uint64_t>(day - kSnapshotsKept));
      CUBRICK_CHECK(old.ok());
      CUBRICK_CHECK(db.DeletePartitions("users", {*old}).ok());
      db.txns().TryAdvanceLSE(db.txns().LCE());
      db.PurgeAll();
    }

    // Query TODAY's snapshot: how is user 43 doing?
    Query probe;
    auto snap_filter =
        db.EqFilter("users", "snapshot", static_cast<int64_t>(day));
    auto user_filter = db.EqFilter("users", "user_id",
                                   static_cast<int64_t>(43));
    CUBRICK_CHECK(snap_filter.ok() && user_filter.ok());
    probe.filters = {*snap_filter, *user_filter};
    MaterializeOptions one;
    one.limit = 1;
    auto row = db.Select("users", probe, one);
    CUBRICK_CHECK(row.ok() && !row->empty());
    std::printf("day %d: user 43 status = %-8s (snapshots held: %lld, "
                "records: %llu)\n",
                day, row->front().values[2].as_string().c_str(),
                static_cast<long long>(std::min(day + 1, kSnapshotsKept)),
                static_cast<unsigned long long>(db.TotalRecords()));
  }

  // Historical question answered from a retained older snapshot: what was
  // user 43's status as of day 3?
  Query history;
  auto old_snap = db.EqFilter("users", "snapshot", static_cast<int64_t>(3));
  auto user_filter =
      db.EqFilter("users", "user_id", static_cast<int64_t>(43));
  history.filters = {*old_snap, *user_filter};
  MaterializeOptions one;
  one.limit = 1;
  auto row = db.Select("users", history, one);
  std::printf("\nas-of day 3 (retained snapshot): user 43 was %s\n",
              row->front().values[2].as_string().c_str());
  std::printf("history before the retention window is gone — by design, "
              "the §II trade-off.\n");
  return 0;
}
