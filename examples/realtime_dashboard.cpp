// Realtime dashboard — lock-free readers over a live ingestion stream.
//
// Cubrick's target workload (§V): interactive analytics over highly dynamic
// datasets ingested from realtime streams. Writer threads continuously load
// event batches (one implicit AOSI transaction each) while dashboard
// queries run at Snapshot Isolation. Because batches are atomic and readers
// are never blocked, every query sees a consistent multiple of the batch
// size — never a torn batch — and read latency is unaffected by writers.
//
//   ./build/examples/example_realtime_dashboard

#include <atomic>
#include <cstdio>
#include <thread>

#include "common/random.h"
#include "common/stopwatch.h"
#include "cubrick/database.h"

using namespace cubrick;

namespace {
constexpr uint64_t kBatchRows = 1000;
constexpr int kWriters = 3;
constexpr int kDashboardRefreshes = 20;
}  // namespace

int main() {
  DatabaseOptions options;
  options.shards_per_cube = 2;
  options.threaded_shards = true;
  Database db(options);
  CUBRICK_CHECK(db.ExecuteDdl("CREATE CUBE events ("
                              "app string CARDINALITY 8 RANGE 1, "
                              "country int CARDINALITY 64 RANGE 8, "
                              "impressions int, clicks int)")
                    .ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> batches_loaded{0};
  const char* kApps[] = {"feed", "stories", "reels", "marketplace"};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      Random rng(100 + static_cast<uint64_t>(w));
      while (!stop.load(std::memory_order_seq_cst)) {
        std::vector<Record> batch;
        batch.reserve(kBatchRows);
        for (uint64_t i = 0; i < kBatchRows; ++i) {
          batch.push_back({kApps[rng.Uniform(4)],
                           static_cast<int64_t>(rng.Uniform(64)),
                           static_cast<int64_t>(rng.Uniform(100)),
                           static_cast<int64_t>(rng.Uniform(8))});
        }
        CUBRICK_CHECK(db.Load("events", batch).ok());
        batches_loaded.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  Query dashboard;
  dashboard.group_by = {0};  // by app
  dashboard.aggs = {{AggSpec::Fn::kCount, 0},
                    {AggSpec::Fn::kSum, 0},
                    {AggSpec::Fn::kSum, 1}};

  std::printf("%8s %10s %12s %14s %10s %s\n", "tick", "records", "impr",
              "clicks", "query_us", "consistent?");
  auto schema = db.FindSchema("events");
  for (int tick = 0; tick < kDashboardRefreshes; ++tick) {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    Stopwatch timer;
    auto result = db.Query("events", dashboard);
    const int64_t us = timer.ElapsedMicros();
    CUBRICK_CHECK(result.ok());
    double records = 0, impressions = 0, clicks = 0;
    for (const auto& [key, states] : result->groups()) {
      records += states[0].Finalize(AggSpec::Fn::kCount);
      impressions += states[1].Finalize(AggSpec::Fn::kSum);
      clicks += states[2].Finalize(AggSpec::Fn::kSum);
    }
    // The SI invariant: visible records are always whole batches.
    const bool consistent =
        static_cast<uint64_t>(records) % kBatchRows == 0;
    std::printf("%8d %10.0f %12.0f %14.0f %10lld %s\n", tick, records,
                impressions, clicks, static_cast<long long>(us),
                consistent ? "yes" : "NO — torn batch!");
    CUBRICK_CHECK(consistent);
  }

  stop.store(true, std::memory_order_seq_cst);
  for (auto& w : writers) w.join();

  // Final per-app breakdown.
  auto result = db.Query("events", dashboard);
  std::printf("\nfinal per-app counts (%llu batches ingested):\n",
              static_cast<unsigned long long>(batches_loaded.load(std::memory_order_relaxed)));
  for (const auto& [key, states] : result->groups()) {
    std::printf("  %-12s %10.0f events\n",
                schema->dictionary(0)->Decode(key[0]).value().c_str(),
                states[0].Finalize(AggSpec::Fn::kCount));
  }
  return 0;
}
