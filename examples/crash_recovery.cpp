// Crash recovery — §III-D durability: background-style flush rounds,
// a simulated crash, and recovery up to the last complete flush.
//
//   ./build/examples/example_crash_recovery

#include <cstdio>
#include <filesystem>

#include "common/random.h"
#include "cubrick/database.h"

using namespace cubrick;

namespace {
constexpr char kDdl[] =
    "CREATE CUBE sensors (device int CARDINALITY 256 RANGE 16, "
    "reading double)";

std::vector<Record> Batch(Random* rng, uint64_t rows) {
  std::vector<Record> records;
  for (uint64_t i = 0; i < rows; ++i) {
    records.push_back({static_cast<int64_t>(rng->Uniform(256)),
                       rng->NextDouble() * 50.0});
  }
  return records;
}
}  // namespace

int main() {
  const auto dir = std::filesystem::temp_directory_path() / "cubrick_demo";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  DatabaseOptions options;
  options.data_dir = dir.string();

  Query q;
  q.aggs = {{AggSpec::Fn::kCount, 0}, {AggSpec::Fn::kSum, 0}};

  {
    Database db(options);
    CUBRICK_CHECK(db.ExecuteDdl(kDdl).ok());
    Random rng(55);

    // Three load transactions, checkpoint after each (the paper's
    // continuously-running background flush, driven explicitly here).
    for (int round = 1; round <= 3; ++round) {
      CUBRICK_CHECK(db.Load("sensors", Batch(&rng, 10'000)).ok());
      auto lse = db.Checkpoint();
      CUBRICK_CHECK(lse.ok());
      std::printf("round %d: %llu records durable, LSE=%llu\n", round,
                  static_cast<unsigned long long>(db.TotalRecords()),
                  static_cast<unsigned long long>(*lse));
    }

    // One more load that never gets flushed: it will be lost by the crash
    // (on a cluster, replicas would re-supply it; single node loses it, as
    // the paper states).
    CUBRICK_CHECK(db.Load("sensors", Batch(&rng, 10'000)).ok());
    std::printf("pre-crash state: %llu records (10000 of them unflushed)\n",
                static_cast<unsigned long long>(db.TotalRecords()));
    // ...process "crashes" here: Database destroyed without a checkpoint.
  }

  Database db(options);
  CUBRICK_CHECK(db.ExecuteDdl(kDdl).ok());
  CUBRICK_CHECK(db.Recover().ok());
  auto result = db.Query("sensors", q);
  CUBRICK_CHECK(result.ok());
  std::printf("after recovery: %llu records, LCE=LSE=%llu, EC=%llu\n",
              static_cast<unsigned long long>(db.TotalRecords()),
              static_cast<unsigned long long>(db.txns().LSE()),
              static_cast<unsigned long long>(db.txns().EC()));

  // The recovered database continues normally.
  Random rng(77);
  CUBRICK_CHECK(db.Load("sensors", Batch(&rng, 500)).ok());
  std::printf("post-recovery load works: %llu records\n",
              static_cast<unsigned long long>(db.TotalRecords()));

  std::filesystem::remove_all(dir);
  return 0;
}
