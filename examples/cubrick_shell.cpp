// cubrick_shell — a minimal interactive shell over the Database API.
//
// Usage:  ./build/examples/example_cubrick_shell  (reads commands on stdin)
//
//   CREATE CUBE name (col type [CARDINALITY n [RANGE m]], ...)
//   LOAD <cube> <csv values>          one record, e.g.  LOAD sales US,3,100
//   QUERY <cube> <SUM|COUNT|MIN|MAX|AVG> <metric> [BY <dim>]
//         [WHERE <dim>=<value>]
//   SELECT <cube> [LIMIT n]           materialize rows
//   DELETE <cube> WHERE <dim>=<value> partition-granular delete
//   STATS                             record counts and memory
//   HELP / QUIT
//
// Piped demo:
//   printf 'CREATE CUBE s (region string CARDINALITY 4 RANGE 1, v int)\n
//           LOAD s US,10\nLOAD s BR,20\nQUERY s SUM v BY region\nQUIT\n' \
//     | ./build/examples/example_cubrick_shell

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cubrick/database.h"

using namespace cubrick;

namespace {

std::vector<std::string> Split(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> tokens;
  std::string token;
  while (in >> token) tokens.push_back(token);
  return tokens;
}

std::string Upper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(c));
  return s;
}

/// Parses "dim=value" into a filter via the facade helpers.
Result<FilterClause> ParseWhere(Database& db, const std::string& cube,
                                const std::string& expr) {
  const size_t eq = expr.find('=');
  if (eq == std::string::npos) {
    return Status::InvalidArgument("WHERE expects dim=value");
  }
  const std::string dim = expr.substr(0, eq);
  const std::string value = expr.substr(eq + 1);
  auto schema = db.FindSchema(cube);
  if (schema == nullptr) {
    return Status::NotFound("no cube '" + cube + "'");
  }
  auto dim_idx = schema->DimensionIndex(dim);
  if (!dim_idx.ok()) return dim_idx.status();
  if (schema->dimensions()[*dim_idx].is_string) {
    return db.EqFilter(cube, dim, value);
  }
  return db.EqFilter(cube, dim, static_cast<int64_t>(std::atoll(
                                    value.c_str())));
}

void RunQuery(Database& db, const std::vector<std::string>& tokens) {
  // QUERY <cube> <FN> <metric> [BY <dim>] [WHERE <dim>=<value>]
  if (tokens.size() < 4) {
    std::printf("usage: QUERY <cube> <SUM|COUNT|MIN|MAX|AVG> <metric> "
                "[BY dim] [WHERE dim=value]\n");
    return;
  }
  const std::string& cube = tokens[1];
  auto schema = db.FindSchema(cube);
  if (schema == nullptr) {
    std::printf("error: no cube '%s'\n", cube.c_str());
    return;
  }
  const std::string fn_name = Upper(tokens[2]);
  AggSpec::Fn fn;
  if (fn_name == "SUM") {
    fn = AggSpec::Fn::kSum;
  } else if (fn_name == "COUNT") {
    fn = AggSpec::Fn::kCount;
  } else if (fn_name == "MIN") {
    fn = AggSpec::Fn::kMin;
  } else if (fn_name == "MAX") {
    fn = AggSpec::Fn::kMax;
  } else if (fn_name == "AVG") {
    fn = AggSpec::Fn::kAvg;
  } else {
    std::printf("error: unknown aggregate '%s'\n", tokens[2].c_str());
    return;
  }
  auto metric = schema->MetricIndex(tokens[3]);
  if (!metric.ok()) {
    std::printf("error: %s\n", metric.status().ToString().c_str());
    return;
  }

  Query q;
  q.aggs = {{fn, *metric}};
  size_t group_dim = 0;
  bool grouped = false;
  for (size_t i = 4; i + 1 < tokens.size() + 1; ++i) {
    if (i + 1 < tokens.size() && Upper(tokens[i]) == "BY") {
      auto dim = schema->DimensionIndex(tokens[i + 1]);
      if (!dim.ok()) {
        std::printf("error: %s\n", dim.status().ToString().c_str());
        return;
      }
      grouped = true;
      group_dim = *dim;
      q.group_by = {group_dim};
      ++i;
    } else if (i + 1 < tokens.size() && Upper(tokens[i]) == "WHERE") {
      auto filter = ParseWhere(db, cube, tokens[i + 1]);
      if (!filter.ok()) {
        std::printf("error: %s\n", filter.status().ToString().c_str());
        return;
      }
      q.filters.push_back(*filter);
      ++i;
    }
  }

  auto result = db.Query(cube, q);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  if (!grouped) {
    std::printf("%s(%s) = %g\n", fn_name.c_str(), tokens[3].c_str(),
                result->Single(0, fn));
    return;
  }
  for (const auto& [key, states] : result->groups()) {
    std::string label;
    if (schema->dimensions()[group_dim].is_string) {
      label = schema->dictionary(group_dim)->Decode(key[0]).value();
    } else {
      label = std::to_string(key[0]);
    }
    std::printf("  %-16s %g\n", label.c_str(), states[0].Finalize(fn));
  }
}

void RunSelect(Database& db, const std::vector<std::string>& tokens) {
  if (tokens.size() < 2) {
    std::printf("usage: SELECT <cube> [LIMIT n]\n");
    return;
  }
  MaterializeOptions options;
  options.limit = 20;
  if (tokens.size() >= 4 && Upper(tokens[2]) == "LIMIT") {
    options.limit = static_cast<uint64_t>(std::atoll(tokens[3].c_str()));
  }
  auto rows = db.Select(tokens[1], {}, options);
  if (!rows.ok()) {
    std::printf("error: %s\n", rows.status().ToString().c_str());
    return;
  }
  for (const auto& row : *rows) {
    std::string line;
    for (size_t i = 0; i < row.values.size(); ++i) {
      if (i > 0) line += ", ";
      line += row.values[i].ToString();
    }
    std::printf("  %s\n", line.c_str());
  }
  std::printf("(%zu rows)\n", rows->size());
}

}  // namespace

int main() {
  Database db;
  std::printf("cubrick shell — AOSI in-memory OLAP. Type HELP.\n");
  std::string line;
  while (std::printf("> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    const auto tokens = Split(line);
    if (tokens.empty()) continue;
    const std::string cmd = Upper(tokens[0]);
    if (cmd == "QUIT" || cmd == "EXIT") break;
    if (cmd == "HELP") {
      std::printf(
          "  CREATE CUBE name (col type [CARDINALITY n [RANGE m]], ...)\n"
          "  LOAD <cube> <csv>\n"
          "  QUERY <cube> <SUM|COUNT|MIN|MAX|AVG> <metric> [BY dim] "
          "[WHERE dim=value]\n"
          "  SELECT <cube> [LIMIT n]\n"
          "  EXPLAIN <cube> [WHERE dim=value]\n"
          "  DELETE <cube> WHERE <dim>=<value>\n"
          "  STATS | HELP | QUIT\n");
    } else if (cmd == "CREATE") {
      const Status status = db.ExecuteDdl(line);
      std::printf("%s\n", status.ok() ? "ok" : status.ToString().c_str());
    } else if (cmd == "LOAD") {
      if (tokens.size() < 3) {
        std::printf("usage: LOAD <cube> <csv values>\n");
        continue;
      }
      auto schema = db.FindSchema(tokens[1]);
      if (schema == nullptr) {
        std::printf("error: no cube '%s'\n", tokens[1].c_str());
        continue;
      }
      auto record = ParseCsvLine(*schema, tokens[2]);
      if (!record.ok()) {
        std::printf("error: %s\n", record.status().ToString().c_str());
        continue;
      }
      const Status status = db.Load(tokens[1], {*record});
      std::printf("%s\n", status.ok() ? "ok (1 record, implicit txn)"
                                      : status.ToString().c_str());
    } else if (cmd == "QUERY") {
      RunQuery(db, tokens);
    } else if (cmd == "SELECT") {
      RunSelect(db, tokens);
    } else if (cmd == "EXPLAIN") {
      // EXPLAIN <cube> [WHERE dim=value] — granular-partitioning pruning.
      if (tokens.size() < 2) {
        std::printf("usage: EXPLAIN <cube> [WHERE dim=value]\n");
        continue;
      }
      Table* table = db.FindTable(tokens[1]);
      if (table == nullptr) {
        std::printf("error: no cube '%s'\n", tokens[1].c_str());
        continue;
      }
      Query q;
      if (tokens.size() >= 4 && Upper(tokens[2]) == "WHERE") {
        auto filter = ParseWhere(db, tokens[1], tokens[3]);
        if (!filter.ok()) {
          std::printf("error: %s\n", filter.status().ToString().c_str());
          continue;
        }
        q.filters.push_back(*filter);
      }
      const ScanPlanStats stats = table->ExplainScan(q);
      std::printf("  bricks: %llu total, %llu pruned by ranges, %llu "
                  "scanned\n  rows considered: %llu; filters skipped as "
                  "range-covered: %llu\n",
                  static_cast<unsigned long long>(stats.bricks_total),
                  static_cast<unsigned long long>(stats.bricks_pruned),
                  static_cast<unsigned long long>(stats.bricks_scanned),
                  static_cast<unsigned long long>(stats.rows_considered),
                  static_cast<unsigned long long>(
                      stats.filters_skipped_covered));
    } else if (cmd == "DELETE") {
      if (tokens.size() < 4 || Upper(tokens[2]) != "WHERE") {
        std::printf("usage: DELETE <cube> WHERE <dim>=<value>\n");
        continue;
      }
      auto filter = ParseWhere(db, tokens[1], tokens[3]);
      if (!filter.ok()) {
        std::printf("error: %s\n", filter.status().ToString().c_str());
        continue;
      }
      const Status status = db.DeletePartitions(tokens[1], {*filter});
      std::printf("%s\n", status.ok() ? "ok (partitions marked deleted)"
                                      : status.ToString().c_str());
    } else if (cmd == "STATS") {
      std::printf("  cubes: ");
      for (const auto& name : db.CubeNames()) {
        std::printf("%s ", name.c_str());
      }
      std::printf("\n  records: %llu\n  data bytes: %zu\n"
                  "  AOSI overhead bytes: %zu\n  EC=%llu LCE=%llu LSE=%llu\n",
                  static_cast<unsigned long long>(db.TotalRecords()),
                  db.DataMemoryUsage(), db.HistoryMemoryUsage(),
                  static_cast<unsigned long long>(db.txns().EC()),
                  static_cast<unsigned long long>(db.txns().LCE()),
                  static_cast<unsigned long long>(db.txns().LSE()));
    } else {
      std::printf("unknown command '%s' (try HELP)\n", tokens[0].c_str());
    }
  }
  return 0;
}
