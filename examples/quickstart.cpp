// Quickstart — create the paper's Figure 4 cube, load a few records, and
// run aggregation queries under Snapshot Isolation.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/example_quickstart

#include <cstdio>

#include "cubrick/database.h"

using namespace cubrick;

int main() {
  Database db;

  // The exact DDL from the paper (§V-A, Figure 4).
  Status ddl = db.ExecuteDdl(
      "CREATE CUBE test_cube (region string CARDINALITY 4 RANGE 2, "
      "gender string CARDINALITY 4 RANGE 1, likes int, comments int)");
  CUBRICK_CHECK(ddl.ok());

  // Load a batch — one implicit AOSI transaction; the batch becomes
  // visible atomically.
  Status load = db.Load("test_cube", {
                                         {"CA", "male", 120, 14},
                                         {"CA", "female", 300, 32},
                                         {"NY", "male", 45, 5},
                                         {"NY", "female", 80, 11},
                                         {"TX", "male", 10, 1},
                                     });
  CUBRICK_CHECK(load.ok());

  // Total likes/comments.
  Query q;
  q.aggs = {{AggSpec::Fn::kSum, 0},
            {AggSpec::Fn::kSum, 1},
            {AggSpec::Fn::kCount, 0}};
  auto totals = db.Query("test_cube", q);
  CUBRICK_CHECK(totals.ok());
  std::printf("total likes=%.0f comments=%.0f records=%.0f\n",
              totals->Single(0, AggSpec::Fn::kSum),
              totals->Single(1, AggSpec::Fn::kSum),
              totals->Single(2, AggSpec::Fn::kCount));

  // Likes by region, filtered to gender = 'male'.
  Query by_region;
  by_region.group_by = {0};
  by_region.aggs = {{AggSpec::Fn::kSum, 0}};
  auto male = db.EqFilter("test_cube", "gender", "male");
  CUBRICK_CHECK(male.ok());
  by_region.filters = {*male};
  auto result = db.Query("test_cube", by_region);
  CUBRICK_CHECK(result.ok());

  auto schema = db.FindSchema("test_cube");
  std::printf("\nlikes by region (gender = male):\n");
  for (const auto& [key, states] : result->groups()) {
    std::printf("  %-4s %6.0f\n",
                schema->dictionary(0)->Decode(key[0]).value().c_str(),
                states[0].Finalize(AggSpec::Fn::kSum));
  }

  // Explicit transaction: both loads become visible together.
  aosi::Txn txn = db.Begin();
  CUBRICK_CHECK(db.LoadIn(txn, "test_cube", {{"WA", "male", 7, 0}}).ok());
  CUBRICK_CHECK(db.LoadIn(txn, "test_cube", {{"WA", "female", 9, 1}}).ok());
  auto before = db.Query("test_cube", q);
  std::printf("\nbefore commit, other readers still count %.0f records\n",
              before->Single(2, AggSpec::Fn::kCount));
  CUBRICK_CHECK(db.Commit(txn).ok());
  auto after = db.Query("test_cube", q);
  std::printf("after commit: %.0f records\n",
              after->Single(2, AggSpec::Fn::kCount));
  return 0;
}
